// Page cursors over tables through the buffer pool: a plain one-pass cursor
// (query-centric scans) and a circular cursor that starts at an arbitrary
// page and wraps (shared scans: QPipe's circular scan stage and CJOIN's
// preprocessor both build on it).
//
// Failure semantics: Next() returns Result<const Page*>. Transient read
// errors (kUnavailable / kResourceExhausted) are retried internally with
// capped exponential backoff + jitter (common/retry.h) before surfacing;
// on a surfaced error the cursor has already advanced past the failing
// page, so a caller that treats the error as skippable (CJOIN's shared
// scan skipping a poisoned page) can simply keep calling Next().

#ifndef SDW_STORAGE_SCAN_H_
#define SDW_STORAGE_SCAN_H_

#include <chrono>
#include <cstdint>
#include <thread>

#include "common/retry.h"
#include "common/rng.h"
#include "storage/buffer_pool.h"
#include "storage/table.h"

namespace sdw::storage {

namespace scan_internal {

/// Fetches one page with transient-error retry; shared by both cursors.
inline Result<const Page*> FetchWithRetry(BufferPool* pool, const Table& table,
                                          uint64_t page_idx,
                                          const RetryPolicy& policy, Rng* rng,
                                          RetryStats* stats) {
  for (uint32_t attempt = 1;; ++attempt) {
    Result<const Page*> r = pool->FetchPage(table, page_idx);
    if (r.ok()) return r;
    if (!RetryPolicy::IsTransient(r.status()) ||
        attempt >= policy.max_attempts) {
      if (RetryPolicy::IsTransient(r.status())) {
        stats->giveups.fetch_add(1, std::memory_order_relaxed);
      }
      return r;
    }
    const int64_t backoff = policy.BackoffNanos(attempt, rng);
    stats->retries.fetch_add(1, std::memory_order_relaxed);
    stats->backoff_nanos.fetch_add(backoff, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::nanoseconds(backoff));
  }
}

}  // namespace scan_internal

/// One-pass cursor: pages 0..num_pages-1 in order.
class TableScanCursor {
 public:
  TableScanCursor(const Table* table, BufferPool* pool,
                  RetryPolicy retry = RetryPolicy())
      : table_(table), pool_(pool), retry_(retry), rng_(0x5ca9c0ffee) {}

  /// Next page, Ok(nullptr) at end of table, or the read error after
  /// exhausting transient retries (the cursor skips past the failed page).
  Result<const Page*> Next() {
    if (pos_ >= table_->num_pages()) {
      return static_cast<const Page*>(nullptr);
    }
    return scan_internal::FetchWithRetry(pool_, *table_, pos_++, retry_, &rng_,
                                         &retry_stats_);
  }

  uint64_t position() const { return pos_; }
  const RetryStats& retry_stats() const { return retry_stats_; }

 private:
  const Table* table_;
  BufferPool* pool_;
  RetryPolicy retry_;
  Rng rng_;
  RetryStats retry_stats_;
  uint64_t pos_ = 0;
};

/// Endless circular cursor starting at `start_page`; the caller decides when
/// a consumer has seen a full cycle (each consumer's point of entry).
class CircularPageCursor {
 public:
  CircularPageCursor(const Table* table, BufferPool* pool,
                     uint64_t start_page = 0,
                     RetryPolicy retry = RetryPolicy())
      : table_(table),
        pool_(pool),
        retry_(retry),
        rng_(0xc19c01a5),
        pos_(start_page % PageCount(table)) {}

  /// Fetches the current page and advances (wrapping). Ok(nullptr) only for
  /// empty tables. On error the cursor has advanced past the failed page:
  /// the next call fetches the following page (poisoned-page skip).
  Result<const Page*> Next() {
    if (table_->num_pages() == 0) {
      return static_cast<const Page*>(nullptr);
    }
    const uint64_t page_idx = pos_;
    pos_ = (pos_ + 1) % table_->num_pages();
    return scan_internal::FetchWithRetry(pool_, *table_, page_idx, retry_,
                                         &rng_, &retry_stats_);
  }

  /// Page index that the next call to Next() will fetch.
  uint64_t position() const { return pos_; }
  const RetryStats& retry_stats() const { return retry_stats_; }

  const Table* table() const { return table_; }

 private:
  static uint64_t PageCount(const Table* t) {
    return t->num_pages() == 0 ? 1 : t->num_pages();
  }

  const Table* table_;
  BufferPool* pool_;
  RetryPolicy retry_;
  Rng rng_;
  RetryStats retry_stats_;
  uint64_t pos_;
};

}  // namespace sdw::storage

#endif  // SDW_STORAGE_SCAN_H_
