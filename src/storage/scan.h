// Page cursors over tables through the buffer pool: a plain one-pass cursor
// (query-centric scans) and a circular cursor that starts at an arbitrary
// page and wraps (shared scans: QPipe's circular scan stage and CJOIN's
// preprocessor both build on it).

#ifndef SDW_STORAGE_SCAN_H_
#define SDW_STORAGE_SCAN_H_

#include <cstdint>

#include "storage/buffer_pool.h"
#include "storage/table.h"

namespace sdw::storage {

/// One-pass cursor: pages 0..num_pages-1 in order.
class TableScanCursor {
 public:
  TableScanCursor(const Table* table, BufferPool* pool)
      : table_(table), pool_(pool) {}

  /// Next page, or nullptr at end of table.
  const Page* Next() {
    if (pos_ >= table_->num_pages()) return nullptr;
    return pool_->FetchPage(*table_, pos_++);
  }

  uint64_t position() const { return pos_; }

 private:
  const Table* table_;
  BufferPool* pool_;
  uint64_t pos_ = 0;
};

/// Endless circular cursor starting at `start_page`; the caller decides when
/// a consumer has seen a full cycle (each consumer's point of entry).
class CircularPageCursor {
 public:
  CircularPageCursor(const Table* table, BufferPool* pool,
                     uint64_t start_page = 0)
      : table_(table), pool_(pool), pos_(start_page % PageCount(table)) {}

  /// Fetches the current page and advances (wrapping). Returns nullptr only
  /// for empty tables.
  const Page* Next() {
    if (table_->num_pages() == 0) return nullptr;
    const Page* p = pool_->FetchPage(*table_, pos_);
    pos_ = (pos_ + 1) % table_->num_pages();
    return p;
  }

  /// Page index that the next call to Next() will fetch.
  uint64_t position() const { return pos_; }

  const Table* table() const { return table_; }

 private:
  static uint64_t PageCount(const Table* t) {
    return t->num_pages() == 0 ? 1 : t->num_pages();
  }

  const Table* table_;
  BufferPool* pool_;
  uint64_t pos_;
};

}  // namespace sdw::storage

#endif  // SDW_STORAGE_SCAN_H_
