#include "storage/storage_device.h"

#include <chrono>
#include <thread>

#include "common/fault_injector.h"
#include "common/timing.h"

namespace sdw::storage {

Status StorageDevice::ReadPage(uint16_t table_id, uint64_t page_idx,
                               size_t bytes) {
  logical_reads_.fetch_add(1, std::memory_order_relaxed);
  // Checked before the memory-resident early-out so fault schedules also
  // apply to the paper's RAM-drive configuration (where every read is a
  // logical read but no device time is charged).
  Status fault =
      FaultInjector::Global().Check("storage.device", Key(table_id, page_idx));
  if (!fault.ok()) {
    read_errors_.fetch_add(1, std::memory_order_relaxed);
    return fault;
  }
  if (options_.memory_resident) return Status::Ok();

  const uint64_t key = Key(table_id, page_idx);
  int64_t complete_at;
  {
    MutexLock lock(mu_);

    if (!options_.direct_io && options_.os_cache_bytes > 0 &&
        CacheLookupOrInsert(key, bytes)) {
      cache_hit_bytes_.fetch_add(bytes, std::memory_order_relaxed);
      return Status::Ok();
    }

    const bool sequential = (key == last_key_ + 1);
    last_key_ = key;

    const double xfer_nanos =
        static_cast<double>(bytes) / (options_.seq_bandwidth_mbps * 1e6) * 1e9;
    const double seek_nanos = sequential ? 0.0 : options_.seek_latency_us * 1e3;

    const int64_t now = NowNanos();
    const int64_t start = busy_until_nanos_ > now ? busy_until_nanos_ : now;
    busy_until_nanos_ =
        start + static_cast<int64_t>(xfer_nanos + seek_nanos);
    complete_at = busy_until_nanos_;
    device_bytes_read_.fetch_add(bytes, std::memory_order_relaxed);
  }

  // Wait (outside the lock) until the simulated transfer completes. OS
  // sleep granularity is ~1 ms, so sub-threshold waits are deferred: the
  // device timeline still advances per read, and the caller only sleeps
  // once its completion time runs far enough ahead of the wall clock. This
  // keeps aggregate bandwidth/seek behavior accurate at millisecond scale
  // without paying one rounded-up sleep per 32 KB page.
  constexpr int64_t kSleepThresholdNanos = 5'000'000;
  const int64_t now = NowNanos();
  if (complete_at - now > kSleepThresholdNanos) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(complete_at - now));
  }
  return Status::Ok();
}

bool StorageDevice::CacheLookupOrInsert(uint64_t key, size_t bytes) {
  auto it = cache_index_.find(key);
  if (it != cache_index_.end()) {
    // Move to MRU position.
    lru_.splice(lru_.begin(), lru_, it->second);
    return true;
  }
  // Insert as MRU; evict LRU entries until within budget.
  lru_.push_front({key, bytes});
  cache_index_[key] = lru_.begin();
  cache_used_bytes_ += bytes;
  while (cache_used_bytes_ > options_.os_cache_bytes && !lru_.empty()) {
    const CacheEntry& victim = lru_.back();
    cache_used_bytes_ -= victim.bytes;
    cache_index_.erase(victim.key);
    lru_.pop_back();
  }
  return false;
}

void StorageDevice::ResetStats() {
  MutexLock lock(mu_);
  device_bytes_read_.store(0, std::memory_order_relaxed);
  cache_hit_bytes_.store(0, std::memory_order_relaxed);
  logical_reads_.store(0, std::memory_order_relaxed);
  read_errors_.store(0, std::memory_order_relaxed);
  busy_until_nanos_ = 0;
  last_key_ = ~uint64_t{0};
  lru_.clear();
  cache_index_.clear();
  cache_used_bytes_ = 0;
}

}  // namespace sdw::storage
