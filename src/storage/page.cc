#include "storage/page.h"

#include <cstring>
#include <new>

namespace sdw::storage {

std::shared_ptr<Page> Page::Make(uint32_t tuple_size) {
  const uint32_t capacity = PageCapacityFor(tuple_size);
  void* mem = ::operator new(kPageSize);
  Page* p = new (mem) Page(tuple_size, capacity);
  return std::shared_ptr<Page>(p, [](Page* page) {
    page->~Page();
    ::operator delete(page);
  });
}

std::shared_ptr<Page> Page::Clone(const Page& src) {
  auto copy = Make(src.tuple_size_);
  std::memcpy(copy->payload_, src.payload_, src.used_bytes());
  copy->tuple_count_ = src.tuple_count_;
  copy->seq_ = src.seq_;
  return copy;
}

}  // namespace sdw::storage
