#include "storage/page.h"

#include <atomic>
#include <cstring>
#include <new>

namespace sdw::storage {

namespace {

std::atomic<uint64_t> g_clone_payload_bytes{0};

/// Rounds `n` up to the next kPageAlign boundary.
constexpr size_t AlignUp(size_t n) {
  return (n + kPageAlign - 1) & ~(kPageAlign - 1);
}

}  // namespace

PageLayout::PageLayout(const Schema& schema) {
  const size_t n = schema.num_columns();
  SDW_CHECK_MSG(n > 0, "PAX layout needs at least one column");
  widths_.resize(n);
  offsets_.resize(n);
  for (size_t c = 0; c < n; ++c) widths_[c] = schema.column(c).width();

  // Minipage order: fixed-width numeric columns first, then the kChar
  // columns (the fixed/variable split — numeric minipages cluster at the
  // front so vector kernels walk a dense aligned prefix).
  std::vector<size_t> order;
  order.reserve(n);
  for (size_t c = 0; c < n; ++c) {
    if (schema.column(c).type != ColumnType::kChar) order.push_back(c);
  }
  for (size_t c = 0; c < n; ++c) {
    if (schema.column(c).type == ColumnType::kChar) order.push_back(c);
  }

  // Capacity: the largest row count whose aligned minipages fit the payload.
  // The row-major capacity is an upper bound; per-minipage alignment wastes
  // at most (n-1)*63 bytes, so the loop runs a handful of iterations.
  const size_t avail = kPageSize - sizeof(Page);
  uint32_t cap = static_cast<uint32_t>(avail / schema.tuple_size());
  auto bytes_for = [&](uint32_t rows) {
    size_t total = 0;
    for (size_t c = 0; c < n; ++c) {
      total += AlignUp(static_cast<size_t>(rows) * widths_[c]);
    }
    return total;
  };
  while (cap > 0 && bytes_for(cap) > avail) --cap;
  SDW_CHECK_MSG(cap > 0, "tuple size %u does not fit a PAX page",
                schema.tuple_size());
  capacity_ = cap;

  size_t off = 0;
  for (size_t c : order) {
    offsets_[c] = off;
    off += AlignUp(static_cast<size_t>(cap) * widths_[c]);
  }
  SDW_CHECK(off <= avail);
}

std::shared_ptr<Page> Page::Alloc(uint32_t tuple_size, uint32_t capacity,
                                  const PageLayout* layout) {
  // 64-byte-aligned allocation: together with the padded header this puts
  // every minipage base (and the row-major payload base) on a cache-line
  // boundary, which the SIMD kernels and PageCapacityFor assert on.
  void* mem = ::operator new(kPageSize, std::align_val_t{kPageAlign});
  Page* p = new (mem) Page(tuple_size, capacity, layout);
  return std::shared_ptr<Page>(p, [](Page* page) {
    page->~Page();
    ::operator delete(page, std::align_val_t{kPageAlign});
  });
}

std::shared_ptr<Page> Page::Make(uint32_t tuple_size) {
  return Alloc(tuple_size, PageCapacityFor(tuple_size), nullptr);
}

std::shared_ptr<Page> Page::MakeColumnar(const Schema& schema,
                                         const PageLayout* layout) {
  SDW_CHECK(layout != nullptr);
  return Alloc(schema.tuple_size(), layout->capacity(), layout);
}

std::shared_ptr<Page> Page::Clone(const Page& src) {
  auto copy = Alloc(src.tuple_size_, src.capacity_, src.layout_);
  size_t copied = 0;
  if (src.layout_ != nullptr) {
    // PAX: copy only each minipage's used prefix.
    const size_t n = src.layout_->num_columns();
    for (size_t c = 0; c < n; ++c) {
      const size_t off = src.layout_->column_offset(c);
      const size_t len = static_cast<size_t>(src.tuple_count_) *
                         src.layout_->column_width(c);
      std::memcpy(copy->payload_ + off, src.payload_ + off, len);
      copied += len;
    }
  } else {
    copied = src.used_bytes();
    std::memcpy(copy->payload_, src.payload_, copied);
  }
  g_clone_payload_bytes.fetch_add(copied, std::memory_order_relaxed);
  copy->tuple_count_ = src.tuple_count_;
  copy->seq_ = src.seq_;
  return copy;
}

uint64_t Page::clone_payload_bytes() {
  return g_clone_payload_bytes.load(std::memory_order_relaxed);
}

}  // namespace sdw::storage
