// Database buffer pool. Since table data always lives in RAM (see
// storage_device.h), the pool tracks *residency* and charges the simulated
// device on misses, evicting with LRU. Its internal latch is the point of
// contention that independent concurrent scans exercise and shared scans
// avoid — one of the effects the paper measures.

#ifndef SDW_STORAGE_BUFFER_POOL_H_
#define SDW_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>

#include "common/breakdown.h"
#include "storage/storage_device.h"
#include "storage/table.h"

namespace sdw::storage {

/// LRU buffer pool over (table, page) keys.
class BufferPool {
 public:
  /// `capacity_bytes` of 0 means "unbounded" (everything stays resident
  /// after first touch — the paper's "large buffer pool that fits the
  /// dataset" configuration).
  BufferPool(StorageDevice* device, size_t capacity_bytes);
  SDW_DISALLOW_COPY(BufferPool);

  /// Makes page `page_idx` of `table` resident (charging device time on a
  /// miss) and returns it. The returned pointer is always valid — eviction
  /// only affects simulated residency, not the in-memory data.
  const Page* FetchPage(const Table& table, uint64_t page_idx);

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

  /// Drops all residency state and zeroes counters (the paper clears file
  /// system caches before every measurement; this is the equivalent knob).
  void Clear();

  StorageDevice* device() const { return device_; }
  size_t capacity_bytes() const { return capacity_bytes_; }

 private:
  static uint64_t Key(uint16_t table_id, uint64_t page_idx) {
    return (static_cast<uint64_t>(table_id) << 48) | page_idx;
  }

  // Returns true when resident; updates LRU order / inserts and evicts.
  bool TouchOrAdmit(uint64_t key);

  StorageDevice* device_;
  const size_t capacity_bytes_;

  std::mutex mu_;
  std::list<uint64_t> lru_;
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> index_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace sdw::storage

#endif  // SDW_STORAGE_BUFFER_POOL_H_
