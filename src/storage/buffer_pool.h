// Database buffer pool. Since table data always lives in RAM (see
// storage_device.h), the pool tracks *residency* and charges the simulated
// device on misses, evicting with LRU. Its internal latch is the point of
// contention that independent concurrent scans exercise and shared scans
// avoid — one of the effects the paper measures.

#ifndef SDW_STORAGE_BUFFER_POOL_H_
#define SDW_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <unordered_map>

#include "common/breakdown.h"
#include "common/mutex.h"
#include "common/status.h"
#include "storage/storage_device.h"
#include "storage/table.h"

namespace sdw::storage {

/// LRU buffer pool over (table, page) keys.
class BufferPool {
 public:
  /// `capacity_bytes` of 0 means "unbounded" (everything stays resident
  /// after first touch — the paper's "large buffer pool that fits the
  /// dataset" configuration).
  BufferPool(StorageDevice* device, size_t capacity_bytes);
  SDW_DISALLOW_COPY(BufferPool);

  /// Makes page `page_idx` of `table` resident (charging device time on a
  /// miss) and returns it; eviction only affects simulated residency, not
  /// the in-memory data. Fallible: an out-of-range page id is
  /// kInvalidArgument, the "storage.read" fault site covers every logical
  /// read, "bufferpool.alloc" covers frame allocation on the miss path
  /// (kResourceExhausted), and device errors propagate. A page is admitted
  /// to the LRU only after its read succeeds, so a failed read leaves no
  /// false residency and a retry goes back to the device.
  Result<const Page*> FetchPage(const Table& table, uint64_t page_idx);

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  /// Fetches that returned an error (injected or device-reported).
  uint64_t read_errors() const {
    return read_errors_.load(std::memory_order_relaxed);
  }

  /// Drops all residency state and zeroes counters (the paper clears file
  /// system caches before every measurement; this is the equivalent knob).
  void Clear();

  StorageDevice* device() const { return device_; }
  size_t capacity_bytes() const { return capacity_bytes_; }

 private:
  static uint64_t Key(uint16_t table_id, uint64_t page_idx) {
    return (static_cast<uint64_t>(table_id) << 48) | page_idx;
  }

  // Returns true when resident (moves the key to the MRU position).
  bool TouchIfResident(uint64_t key) REQUIRES(mu_);
  // Inserts the key as MRU and evicts past capacity. Called only after the
  // device read succeeds.
  void Admit(uint64_t key) REQUIRES(mu_);

  StorageDevice* device_;
  const size_t capacity_bytes_;

  // The contended latch the paper measures; only LRU bookkeeping under it.
  Mutex mu_{lock_rank::Rank::kBufferPool};
  std::list<uint64_t> lru_ GUARDED_BY(mu_);
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> index_
      GUARDED_BY(mu_);

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> read_errors_{0};
};

}  // namespace sdw::storage

#endif  // SDW_STORAGE_BUFFER_POOL_H_
