// Fixed-width tuple schemas. Tuples are raw byte rows laid out column after
// column in declaration order; all field access goes through Schema using
// memcpy-based accessors (alignment-agnostic), matching a row-store storage
// manager like Shore-MT.

#ifndef SDW_STORAGE_SCHEMA_H_
#define SDW_STORAGE_SCHEMA_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/macros.h"

namespace sdw::storage {

/// Supported column types. kChar is a fixed-width, space-padded string.
enum class ColumnType { kInt32, kInt64, kDouble, kChar };

/// Byte width of a column of type `t` (with `size` for kChar).
inline uint32_t TypeWidth(ColumnType t, uint32_t size) {
  switch (t) {
    case ColumnType::kInt32:
      return 4;
    case ColumnType::kInt64:
      return 8;
    case ColumnType::kDouble:
      return 8;
    case ColumnType::kChar:
      return size;
  }
  return 0;
}

/// One column definition.
struct Column {
  std::string name;
  ColumnType type = ColumnType::kInt32;
  uint32_t size = 0;  // kChar width; ignored otherwise

  uint32_t width() const { return TypeWidth(type, size); }
};

/// Ordered set of columns with precomputed offsets; describes both base-table
/// tuples and intermediate-result tuples flowing between operators.
class Schema {
 public:
  Schema() = default;
  /// Builds a schema; aborts on duplicate column names.
  explicit Schema(std::vector<Column> columns);

  /// Convenience factories for appending while building derived schemas.
  static Column Int32(std::string name) {
    return {std::move(name), ColumnType::kInt32, 0};
  }
  static Column Int64(std::string name) {
    return {std::move(name), ColumnType::kInt64, 0};
  }
  static Column Double(std::string name) {
    return {std::move(name), ColumnType::kDouble, 0};
  }
  static Column Char(std::string name, uint32_t size) {
    return {std::move(name), ColumnType::kChar, size};
  }

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  uint32_t offset(size_t i) const { return offsets_[i]; }
  uint32_t tuple_size() const { return tuple_size_; }

  /// Index of column `name`, or -1 when absent.
  int ColumnIndex(std::string_view name) const;
  /// Index of column `name`; aborts when absent.
  size_t MustColumnIndex(std::string_view name) const;

  // Field accessors over a raw tuple. The caller guarantees `tuple` points at
  // tuple_size() valid bytes and the column type matches the call.
  int32_t GetInt32(const std::byte* tuple, size_t col) const {
    SDW_DCHECK(columns_[col].type == ColumnType::kInt32);
    int32_t v;
    std::memcpy(&v, tuple + offsets_[col], sizeof(v));
    return v;
  }
  int64_t GetInt64(const std::byte* tuple, size_t col) const {
    SDW_DCHECK(columns_[col].type == ColumnType::kInt64);
    int64_t v;
    std::memcpy(&v, tuple + offsets_[col], sizeof(v));
    return v;
  }
  double GetDouble(const std::byte* tuple, size_t col) const {
    SDW_DCHECK(columns_[col].type == ColumnType::kDouble);
    double v;
    std::memcpy(&v, tuple + offsets_[col], sizeof(v));
    return v;
  }
  /// Returns the fixed-width character field, trailing spaces stripped.
  std::string_view GetChar(const std::byte* tuple, size_t col) const;
  /// Returns the raw fixed-width character field including padding.
  std::string_view GetCharRaw(const std::byte* tuple, size_t col) const {
    SDW_DCHECK(columns_[col].type == ColumnType::kChar);
    return {reinterpret_cast<const char*>(tuple + offsets_[col]),
            columns_[col].size};
  }

  /// Reads an integer column of either width as int64.
  int64_t GetIntAny(const std::byte* tuple, size_t col) const {
    return columns_[col].type == ColumnType::kInt32
               ? static_cast<int64_t>(GetInt32(tuple, col))
               : GetInt64(tuple, col);
  }

  void SetInt32(std::byte* tuple, size_t col, int32_t v) const {
    SDW_DCHECK(columns_[col].type == ColumnType::kInt32);
    std::memcpy(tuple + offsets_[col], &v, sizeof(v));
  }
  void SetInt64(std::byte* tuple, size_t col, int64_t v) const {
    SDW_DCHECK(columns_[col].type == ColumnType::kInt64);
    std::memcpy(tuple + offsets_[col], &v, sizeof(v));
  }
  void SetDouble(std::byte* tuple, size_t col, double v) const {
    SDW_DCHECK(columns_[col].type == ColumnType::kDouble);
    std::memcpy(tuple + offsets_[col], &v, sizeof(v));
  }
  /// Writes a character field, space-padding / truncating to the fixed width.
  void SetChar(std::byte* tuple, size_t col, std::string_view v) const;

  /// Copies column `src_col` of `src` into column `dst_col` of `dst` given
  /// matching types/widths.
  void CopyColumnTo(const std::byte* src, size_t src_col, const Schema& dst,
                    std::byte* dst_tuple, size_t dst_col) const;

  /// Canonical one-line description, used in plan signatures.
  std::string ToString() const;

 private:
  std::vector<Column> columns_;
  std::vector<uint32_t> offsets_;
  uint32_t tuple_size_ = 0;
};

}  // namespace sdw::storage

#endif  // SDW_STORAGE_SCHEMA_H_
