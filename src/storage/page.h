// Fixed-size (32 KB) pages holding fixed-width tuples. Pages are both the
// unit of table storage and the unit of exchange between operators (QPipe's
// page-based data flow and the Shared Pages List both move PagePtr values).

#ifndef SDW_STORAGE_PAGE_H_
#define SDW_STORAGE_PAGE_H_

#include <cstddef>
#include <cstdint>
#include <memory>

#include "common/macros.h"

namespace sdw::storage {

/// Page size used throughout sdw; matches the paper's 32 KB configuration.
inline constexpr size_t kPageSize = 32 * 1024;

/// A page of fixed-width tuples. The object occupies exactly kPageSize bytes;
/// tuples are packed back to back after the header.
class Page {
 public:
  /// Allocates an empty page for tuples of `tuple_size` bytes.
  /// `tuple_size` must leave room for at least one tuple.
  static std::shared_ptr<Page> Make(uint32_t tuple_size);

  /// Deep copy (used by the push-based forwarding path of SP, which copies
  /// result pages into every satellite's FIFO — the paper's serialization
  /// point).
  static std::shared_ptr<Page> Clone(const Page& src);

  uint32_t tuple_size() const { return tuple_size_; }
  uint32_t tuple_count() const { return tuple_count_; }
  bool empty() const { return tuple_count_ == 0; }

  /// Max number of tuples this page can hold.
  uint32_t capacity() const { return capacity_; }
  bool full() const { return tuple_count_ == capacity_; }

  /// Producer-assigned sequence/position stamp (e.g. page index of a scan).
  uint64_t seq() const { return seq_; }
  void set_seq(uint64_t s) { seq_ = s; }

  /// Pointer to tuple `i` (read).
  const std::byte* tuple(uint32_t i) const {
    SDW_DCHECK(i < tuple_count_);
    return payload_ + static_cast<size_t>(i) * tuple_size_;
  }

  /// Reserves space for one more tuple and returns its writable bytes;
  /// nullptr when the page is full.
  std::byte* AppendTuple() {
    if (full()) return nullptr;
    std::byte* t = payload_ + static_cast<size_t>(tuple_count_) * tuple_size_;
    ++tuple_count_;
    return t;
  }

  /// Bytes of payload currently in use.
  size_t used_bytes() const {
    return static_cast<size_t>(tuple_count_) * tuple_size_;
  }

 private:
  Page(uint32_t tuple_size, uint32_t capacity)
      : tuple_size_(tuple_size), capacity_(capacity) {}

  uint32_t tuple_size_;
  uint32_t capacity_;
  uint32_t tuple_count_ = 0;
  uint64_t seq_ = 0;
  std::byte payload_[];  // flexible array; allocation sized to kPageSize
};

using PagePtr = std::shared_ptr<Page>;

/// Payload capacity of a page for a given tuple size.
inline uint32_t PageCapacityFor(uint32_t tuple_size) {
  const size_t header = sizeof(Page);
  SDW_CHECK_MSG(tuple_size > 0 && header + tuple_size <= kPageSize,
                "tuple size %u does not fit a page", tuple_size);
  return static_cast<uint32_t>((kPageSize - header) / tuple_size);
}

}  // namespace sdw::storage

#endif  // SDW_STORAGE_PAGE_H_
