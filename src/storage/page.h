// Fixed-size (32 KB) pages holding fixed-width tuples. Pages are both the
// unit of table storage and the unit of exchange between operators (QPipe's
// page-based data flow and the Shared Pages List both move PagePtr values).
//
// Two intra-page layouts share the same header and capacity accounting:
//
//  * row-major (NSM): tuples packed back to back after the header — the
//    default, produced by Page::Make and consumed via tuple()/AppendTuple().
//    Every intermediate-result page (operator channels, result sinks) is
//    row-major.
//  * PAX (column-major within the page): one 64-byte-aligned minipage per
//    column, produced by Page::MakeColumnar against a PageLayout. Hot
//    kernels read a whole column as a contiguous vector (column_data), so
//    scans touch only the cache lines of the columns they use. Produced by
//    Table::ConvertToColumnar for scan-heavy base tables (the fact table).
//
// Consumers dispatch per page via columnar(); field() is the layout-neutral
// per-field accessor. See docs/STORAGE.md for the layout diagram and rules.

#ifndef SDW_STORAGE_PAGE_H_
#define SDW_STORAGE_PAGE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/macros.h"
#include "storage/schema.h"

namespace sdw::storage {

/// Page size used throughout sdw; matches the paper's 32 KB configuration.
inline constexpr size_t kPageSize = 32 * 1024;

/// Minipage (and payload-base) alignment: one cache line, and the unit SIMD
/// kernels may assume for aligned column loads.
inline constexpr size_t kPageAlign = 64;

/// PAX layout plan for one schema: per-column minipage offsets within a
/// page's payload and the page's row capacity. Computed once per table
/// (Table::ConvertToColumnar owns it); every columnar page of the table
/// references the same immutable PageLayout.
///
/// Minipages are laid out fixed-width-numeric columns first, then the
/// fixed-width kChar columns (the fixed/variable split: numeric minipages —
/// the vectorizable ones — stay clustered at the aligned front of the page).
/// Each minipage base is 64-byte aligned.
class PageLayout {
 public:
  explicit PageLayout(const Schema& schema);

  SDW_DISALLOW_COPY(PageLayout);

  /// Rows per page under this layout (≤ the row-major capacity: alignment
  /// padding between minipages costs a few tuples per page).
  uint32_t capacity() const { return capacity_; }
  size_t num_columns() const { return offsets_.size(); }
  /// Byte offset of column `c`'s minipage base within the page payload.
  size_t column_offset(size_t c) const { return offsets_[c]; }
  /// Byte width of one value of column `c`.
  uint32_t column_width(size_t c) const { return widths_[c]; }

 private:
  std::vector<size_t> offsets_;  // minipage base per column (payload-relative)
  std::vector<uint32_t> widths_;
  uint32_t capacity_ = 0;
};

/// A page of fixed-width tuples. The object occupies exactly kPageSize bytes;
/// the payload starts at a 64-byte-aligned offset (the header is padded to
/// kPageAlign and allocations are 64-byte aligned).
class Page {
 public:
  /// Allocates an empty row-major page for tuples of `tuple_size` bytes.
  /// `tuple_size` must leave room for at least one tuple.
  static std::shared_ptr<Page> Make(uint32_t tuple_size);

  /// Allocates an empty PAX page laid out per `layout`, which must outlive
  /// the page (tables own their layout for the lifetime of their pages).
  static std::shared_ptr<Page> MakeColumnar(const Schema& schema,
                                            const PageLayout* layout);

  /// Deep copy (used by the push-based forwarding path of SP, which copies
  /// result pages into every satellite's FIFO — the paper's serialization
  /// point). Copies the header plus only the used payload prefix — per
  /// minipage under PAX — not all kPageSize bytes.
  static std::shared_ptr<Page> Clone(const Page& src);

  /// Total payload bytes copied by Clone since process start. The unit tests
  /// assert against this that cloning a nearly-empty page moves its used
  /// prefix, not kPageSize.
  static uint64_t clone_payload_bytes();

  uint32_t tuple_size() const { return tuple_size_; }
  uint32_t tuple_count() const { return tuple_count_; }
  bool empty() const { return tuple_count_ == 0; }

  /// Max number of tuples this page can hold.
  uint32_t capacity() const { return capacity_; }
  bool full() const { return tuple_count_ == capacity_; }

  /// Producer-assigned sequence/position stamp (e.g. page index of a scan).
  uint64_t seq() const { return seq_; }
  void set_seq(uint64_t s) { seq_ = s; }

  /// True when this page is PAX (column-major); tuple()/AppendTuple() are
  /// row-major-only and must not be called on a columnar page.
  bool columnar() const { return layout_ != nullptr; }
  const PageLayout* layout() const { return layout_; }

  /// Pointer to tuple `i` (read). Row-major pages only.
  const std::byte* tuple(uint32_t i) const {
    SDW_DCHECK(i < tuple_count_);
    SDW_DCHECK(layout_ == nullptr);
    return payload_ + static_cast<size_t>(i) * tuple_size_;
  }

  /// Base of column `col`'s minipage: `tuple_count()` contiguous values of
  /// `layout()->column_width(col)` bytes each. Columnar pages only.
  const std::byte* column_data(size_t col) const {
    SDW_DCHECK(layout_ != nullptr);
    return payload_ + layout_->column_offset(col);
  }

  /// Layout-neutral pointer to field `col` of tuple `i`.
  const std::byte* field(const Schema& schema, size_t col, uint32_t i) const {
    SDW_DCHECK(i < tuple_count_);
    if (layout_ != nullptr) {
      return payload_ + layout_->column_offset(col) +
             static_cast<size_t>(i) * layout_->column_width(col);
    }
    return payload_ + static_cast<size_t>(i) * tuple_size_ + schema.offset(col);
  }

  /// Layout-neutral read of an integer column of either width as int64.
  int64_t GetIntAny(const Schema& schema, size_t col, uint32_t i) const {
    const std::byte* f = field(schema, col, i);
    if (schema.column(col).type == ColumnType::kInt32) {
      int32_t v;
      std::memcpy(&v, f, sizeof(v));
      return v;
    }
    int64_t v;
    std::memcpy(&v, f, sizeof(v));
    return v;
  }

  /// Reserves space for one more tuple and returns its writable bytes;
  /// nullptr when the page is full. Row-major pages only.
  std::byte* AppendTuple() {
    if (full()) return nullptr;
    SDW_DCHECK(layout_ == nullptr);
    std::byte* t = payload_ + static_cast<size_t>(tuple_count_) * tuple_size_;
    ++tuple_count_;
    return t;
  }

  /// Appends one row by scattering its fields into the minipages. Columnar
  /// pages only; the page must not be full.
  void AppendRowFrom(const Schema& schema, const std::byte* row) {
    SDW_DCHECK(layout_ != nullptr);
    SDW_CHECK(!full());
    const size_t n = schema.num_columns();
    for (size_t c = 0; c < n; ++c) {
      const uint32_t w = layout_->column_width(c);
      std::memcpy(payload_ + layout_->column_offset(c) +
                      static_cast<size_t>(tuple_count_) * w,
                  row + schema.offset(c), w);
    }
    ++tuple_count_;
  }

  /// Logical bytes of payload currently in use (tuple bytes, excluding PAX
  /// alignment padding).
  size_t used_bytes() const {
    return static_cast<size_t>(tuple_count_) * tuple_size_;
  }

 private:
  Page(uint32_t tuple_size, uint32_t capacity, const PageLayout* layout)
      : tuple_size_(tuple_size), capacity_(capacity), layout_(layout) {}

  static std::shared_ptr<Page> Alloc(uint32_t tuple_size, uint32_t capacity,
                                     const PageLayout* layout);

  uint32_t tuple_size_;
  uint32_t capacity_;
  uint32_t tuple_count_ = 0;
  uint64_t seq_ = 0;
  const PageLayout* layout_;  // nullptr = row-major
  // Pads the header to kPageAlign so payload_ (and with it every row-major
  // tuple base and PAX minipage base) starts on a 64-byte boundary.
  std::byte header_pad_[kPageAlign - 32];
  std::byte payload_[];  // flexible array; allocation sized to kPageSize
};

static_assert(sizeof(Page) == kPageAlign,
              "Page header must pad to the payload alignment boundary");

using PagePtr = std::shared_ptr<Page>;

/// Payload capacity of a row-major page for a given tuple size.
inline uint32_t PageCapacityFor(uint32_t tuple_size) {
  const size_t header = sizeof(Page);
  static_assert(header % kPageAlign == 0,
                "page payload base must be 64-byte aligned");
  SDW_CHECK_MSG(tuple_size > 0 && header + tuple_size <= kPageSize,
                "tuple size %u does not fit a page", tuple_size);
  return static_cast<uint32_t>((kPageSize - header) / tuple_size);
}

}  // namespace sdw::storage

#endif  // SDW_STORAGE_PAGE_H_
