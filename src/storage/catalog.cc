#include "storage/catalog.h"

namespace sdw::storage {

Table* Catalog::AddTable(std::unique_ptr<Table> table) {
  SDW_CHECK_MSG(tables_.find(table->name()) == tables_.end(),
                "table %s already exists", table->name().c_str());
  Table* raw = table.get();
  raw->set_id(static_cast<uint16_t>(by_id_.size()));
  by_id_.push_back(raw);
  tables_.emplace(raw->name(), std::move(table));
  return raw;
}

Table* Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

Table* Catalog::MustGetTable(const std::string& name) const {
  Table* t = GetTable(name);
  SDW_CHECK_MSG(t != nullptr, "no table named %s", name.c_str());
  return t;
}

Table* Catalog::GetTableById(uint16_t id) const {
  SDW_CHECK(id < by_id_.size());
  return by_id_[id];
}

size_t Catalog::total_bytes() const {
  size_t total = 0;
  for (const Table* t : by_id_) total += t->data_bytes();
  return total;
}

}  // namespace sdw::storage
