#include "storage/table.h"

namespace sdw::storage {

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      rows_per_page_(PageCapacityFor(schema_.tuple_size())) {}

std::byte* Table::AppendRow() {
  if (pages_.empty() || pages_.back()->full()) {
    pages_.push_back(Page::Make(schema_.tuple_size()));
    pages_.back()->set_seq(pages_.size() - 1);
  }
  ++num_rows_;
  return pages_.back()->AppendTuple();
}

}  // namespace sdw::storage
