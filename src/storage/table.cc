#include "storage/table.h"

namespace sdw::storage {

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      rows_per_page_(PageCapacityFor(schema_.tuple_size())) {}

std::byte* Table::AppendRow() {
  SDW_CHECK_MSG(layout_ == nullptr,
                "AppendRow on columnar table '%s' (load before converting)",
                name_.c_str());
  if (pages_.empty() || pages_.back()->full()) {
    pages_.push_back(Page::Make(schema_.tuple_size()));
    pages_.back()->set_seq(pages_.size() - 1);
  }
  ++num_rows_;
  return pages_.back()->AppendTuple();
}

void Table::ConvertToColumnar() {
  if (layout_ != nullptr) return;
  layout_ = std::make_unique<PageLayout>(schema_);
  rows_per_page_ = layout_->capacity();
  std::vector<PagePtr> old = std::move(pages_);
  pages_.clear();
  for (const PagePtr& src : old) {
    const uint32_t count = src->tuple_count();
    for (uint32_t i = 0; i < count; ++i) {
      if (pages_.empty() || pages_.back()->full()) {
        pages_.push_back(Page::MakeColumnar(schema_, layout_.get()));
        pages_.back()->set_seq(pages_.size() - 1);
      }
      pages_.back()->AppendRowFrom(schema_, src->tuple(i));
    }
  }
}

}  // namespace sdw::storage
