// Simulated storage device + OS file cache.
//
// Substitution (see DESIGN.md §3): the paper evaluates on two 10 kRPM SAS
// disks in RAID-0 behind the Linux page cache. Tables here always reside in
// RAM; what the device simulates is the *time* and *counters* of reading
// pages, so that the I/O phenomena the paper measures are reproduced:
//
//  * a single sequential scan streams at the device's sequential bandwidth;
//  * N interleaved independent scans incur a seek penalty on every switch of
//    position, collapsing aggregate throughput (why shared scans win);
//  * an OS file cache absorbs re-reads (why CJOIN's preprocessor overhead is
//    masked without direct I/O, Figure 13);
//  * direct I/O bypasses the cache.
//
// Memory-resident mode disables timing entirely (the paper's RAM-drive
// setup) while still counting logical page reads.

#ifndef SDW_STORAGE_STORAGE_DEVICE_H_
#define SDW_STORAGE_STORAGE_DEVICE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <unordered_map>

#include "common/macros.h"
#include "common/mutex.h"
#include "common/status.h"

namespace sdw::storage {

/// Device configuration.
struct DeviceOptions {
  /// RAM-drive mode: reads are free (no sleeping, no device counters).
  bool memory_resident = true;
  /// Sequential streaming bandwidth of the simulated array.
  double seq_bandwidth_mbps = 220.0;
  /// Penalty charged when a read is not contiguous with the previous one.
  double seek_latency_us = 3000.0;
  /// OS file-cache capacity in bytes (0 disables the cache).
  size_t os_cache_bytes = 0;
  /// Bypass the OS cache (paper's direct-I/O runs in Figure 13).
  bool direct_io = false;
};

/// Simulated shared storage device. Thread-safe; all concurrent readers
/// serialize on one device timeline, modelling a single shared disk array.
class StorageDevice {
 public:
  explicit StorageDevice(DeviceOptions options) : options_(options) {}
  SDW_DISALLOW_COPY(StorageDevice);

  /// Charges (and sleeps for) the simulated cost of reading page `page_idx`
  /// of table `table_id`. `bytes` is the page size. Fallible: the
  /// "storage.device" fault site can inject transfer errors or latency
  /// spikes (keyed by the (table_id << 48) | page_idx residency key).
  Status ReadPage(uint16_t table_id, uint64_t page_idx, size_t bytes);

  const DeviceOptions& options() const { return options_; }

  /// Bytes actually transferred from the simulated device (cache misses).
  uint64_t device_bytes_read() const {
    return device_bytes_read_.load(std::memory_order_relaxed);
  }
  /// Bytes served from the simulated OS cache.
  uint64_t cache_hit_bytes() const {
    return cache_hit_bytes_.load(std::memory_order_relaxed);
  }
  /// Logical read requests (all modes, including memory-resident).
  uint64_t logical_reads() const {
    return logical_reads_.load(std::memory_order_relaxed);
  }
  /// Reads that failed with an injected device error.
  uint64_t read_errors() const {
    return read_errors_.load(std::memory_order_relaxed);
  }

  /// Zeroes counters and forgets cache/positioning state.
  void ResetStats();

 private:
  struct CacheEntry {
    uint64_t key;
    size_t bytes;
  };

  // Returns true when the read is served by the OS cache (no device time).
  bool CacheLookupOrInsert(uint64_t key, size_t bytes) REQUIRES(mu_);

  static uint64_t Key(uint16_t table_id, uint64_t page_idx) {
    return (static_cast<uint64_t>(table_id) << 48) | page_idx;
  }

  DeviceOptions options_;

  // One shared device timeline; sleeps happen outside the lock.
  Mutex mu_{lock_rank::Rank::kStorageDevice};
  int64_t busy_until_nanos_ GUARDED_BY(mu_) = 0;       // device timeline
  uint64_t last_key_ GUARDED_BY(mu_) = ~uint64_t{0};   // sequentiality

  // OS cache: LRU list of page keys with byte budget.
  std::list<CacheEntry> lru_ GUARDED_BY(mu_);
  std::unordered_map<uint64_t, std::list<CacheEntry>::iterator> cache_index_
      GUARDED_BY(mu_);
  size_t cache_used_bytes_ GUARDED_BY(mu_) = 0;

  std::atomic<uint64_t> device_bytes_read_{0};
  std::atomic<uint64_t> cache_hit_bytes_{0};
  std::atomic<uint64_t> logical_reads_{0};
  std::atomic<uint64_t> read_errors_{0};
};

}  // namespace sdw::storage

#endif  // SDW_STORAGE_STORAGE_DEVICE_H_
