// Heap tables: an immutable-after-load sequence of pages of fixed-width
// tuples. Analytical workloads in the paper are read-only (data loaded once,
// periodically refreshed), so tables are built by a single loader and then
// shared read-only across all queries.

#ifndef SDW_STORAGE_TABLE_H_
#define SDW_STORAGE_TABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/page.h"
#include "storage/schema.h"

namespace sdw::storage {

/// A named heap table with a fixed schema.
class Table {
 public:
  Table(std::string name, Schema schema);

  SDW_DISALLOW_COPY(Table);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  /// Catalog-assigned id; 0 until registered.
  uint16_t id() const { return id_; }
  void set_id(uint16_t id) { id_ = id; }

  size_t num_rows() const { return num_rows_; }
  size_t num_pages() const { return pages_.size(); }
  /// Tuples that fit in one page of this table.
  uint32_t rows_per_page() const { return rows_per_page_; }
  /// Total bytes across all pages (for I/O accounting).
  size_t data_bytes() const { return num_pages() * kPageSize; }

  const Page* page(size_t i) const { return pages_[i].get(); }
  /// Shares page `i` without copying (table outlives all queries).
  PagePtr SharePage(size_t i) const { return pages_[i]; }

  /// Appends one row; returns writable bytes for the new tuple. Loading must
  /// finish before ConvertToColumnar — appending to a converted table aborts.
  std::byte* AppendRow();

  /// True once the table's pages are PAX (column-major minipages).
  bool columnar() const { return layout_ != nullptr; }
  /// The table's PAX layout (nullptr while row-major). Outlives every page.
  const PageLayout* page_layout() const { return layout_.get(); }

  /// Rebuilds every page in the PAX layout (EngineOptions::columnar_pages).
  /// Idempotent; rows keep their global order but rows_per_page()/num_pages()
  /// change (alignment padding costs a few tuples per page). Must run before
  /// queries share the table's pages — loaders and engines call it between
  /// load and first scan.
  void ConvertToColumnar();

  /// Row by global index (row-id): pages are filled densely, so
  /// row i lives at page i / rows_per_page, slot i % rows_per_page.
  /// Row-major tables only (point access needs a contiguous tuple; the
  /// tables accessed this way — dimensions — stay row-major).
  const std::byte* row(size_t idx) const {
    SDW_DCHECK(idx < num_rows_);
    return pages_[idx / rows_per_page_]->tuple(
        static_cast<uint32_t>(idx % rows_per_page_));
  }

 private:
  std::string name_;
  Schema schema_;
  uint16_t id_ = 0;
  uint32_t rows_per_page_;
  size_t num_rows_ = 0;
  std::vector<PagePtr> pages_;
  std::unique_ptr<PageLayout> layout_;  // set by ConvertToColumnar
};

}  // namespace sdw::storage

#endif  // SDW_STORAGE_TABLE_H_
