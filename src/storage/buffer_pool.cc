#include "storage/buffer_pool.h"

namespace sdw::storage {

BufferPool::BufferPool(StorageDevice* device, size_t capacity_bytes)
    : device_(device), capacity_bytes_(capacity_bytes) {}

const Page* BufferPool::FetchPage(const Table& table, uint64_t page_idx) {
  const uint64_t key = Key(table.id(), page_idx);
  bool resident;
  {
    ScopedWallComponentTimer t(Component::kLocks);
    std::unique_lock<std::mutex> lock(mu_);
    resident = TouchOrAdmit(key);
  }
  if (resident) {
    hits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
    device_->ReadPage(table.id(), page_idx, kPageSize);
  }
  return table.page(page_idx);
}

bool BufferPool::TouchOrAdmit(uint64_t key) {
  auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return true;
  }
  lru_.push_front(key);
  index_[key] = lru_.begin();
  if (capacity_bytes_ > 0) {
    const size_t max_pages = capacity_bytes_ / kPageSize;
    while (index_.size() > max_pages && !lru_.empty()) {
      index_.erase(lru_.back());
      lru_.pop_back();
    }
  }
  return false;
}

void BufferPool::Clear() {
  std::unique_lock<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

}  // namespace sdw::storage
