#include "storage/buffer_pool.h"

#include "common/fault_injector.h"

namespace sdw::storage {

BufferPool::BufferPool(StorageDevice* device, size_t capacity_bytes)
    : device_(device), capacity_bytes_(capacity_bytes) {}

Result<const Page*> BufferPool::FetchPage(const Table& table,
                                          uint64_t page_idx) {
  if (page_idx >= table.num_pages()) {
    return Status::InvalidArgument(
        "page " + std::to_string(page_idx) + " out of range for table '" +
        table.name() + "' (" + std::to_string(table.num_pages()) + " pages)");
  }
  const uint64_t key = Key(table.id(), page_idx);
  // Primary read-fault site: fires on every logical read regardless of
  // residency, so chaos schedules reach memory-resident configurations too.
  Status fault = FaultInjector::Global().Check("storage.read", key);
  if (!fault.ok()) {
    read_errors_.fetch_add(1, std::memory_order_relaxed);
    return fault;
  }
  bool resident;
  {
    ScopedWallComponentTimer t(Component::kLocks);
    MutexLock lock(mu_);
    resident = TouchIfResident(key);
  }
  if (resident) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return table.page(page_idx);
  }
  fault = FaultInjector::Global().Check("bufferpool.alloc", key);
  if (fault.ok()) fault = device_->ReadPage(table.id(), page_idx, kPageSize);
  if (!fault.ok()) {
    read_errors_.fetch_add(1, std::memory_order_relaxed);
    return fault;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  // Note: two threads missing on the same page concurrently both charge the
  // device (the second Admit is a no-op move-to-front). The pre-fault code
  // admitted before reading, which instead made the second thread a free
  // "hit" — an equally arbitrary simulation choice; admitting only after a
  // successful read is what keeps failed pages non-resident.
  {
    ScopedWallComponentTimer t(Component::kLocks);
    MutexLock lock(mu_);
    Admit(key);
  }
  return table.page(page_idx);
}

bool BufferPool::TouchIfResident(uint64_t key) {
  auto it = index_.find(key);
  if (it == index_.end()) return false;
  lru_.splice(lru_.begin(), lru_, it->second);
  return true;
}

void BufferPool::Admit(uint64_t key) {
  auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(key);
  index_[key] = lru_.begin();
  if (capacity_bytes_ > 0) {
    const size_t max_pages = capacity_bytes_ / kPageSize;
    while (index_.size() > max_pages && !lru_.empty()) {
      index_.erase(lru_.back());
      lru_.pop_back();
    }
  }
}

void BufferPool::Clear() {
  MutexLock lock(mu_);
  lru_.clear();
  index_.clear();
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  read_errors_.store(0, std::memory_order_relaxed);
}

}  // namespace sdw::storage
