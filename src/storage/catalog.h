// Catalog: name -> Table registry shared by all engine configurations.

#ifndef SDW_STORAGE_CATALOG_H_
#define SDW_STORAGE_CATALOG_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace sdw::storage {

/// Owns all tables of a database instance. Built single-threaded at load
/// time; read-only afterwards.
class Catalog {
 public:
  Catalog() = default;
  SDW_DISALLOW_COPY(Catalog);

  /// Registers a table; aborts on duplicate names.
  Table* AddTable(std::unique_ptr<Table> table);

  /// Looks a table up by name; nullptr when absent.
  Table* GetTable(const std::string& name) const;
  /// Like GetTable but aborts when absent.
  Table* MustGetTable(const std::string& name) const;
  /// Table by catalog id.
  Table* GetTableById(uint16_t id) const;

  size_t num_tables() const { return tables_.size(); }
  const std::vector<Table*>& tables() const { return by_id_; }

  /// Sum of data_bytes over all tables.
  size_t total_bytes() const;

 private:
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
  std::vector<Table*> by_id_;
};

}  // namespace sdw::storage

#endif  // SDW_STORAGE_CATALOG_H_
