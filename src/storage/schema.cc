#include "storage/schema.h"

#include <algorithm>

namespace sdw::storage {

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {
  offsets_.reserve(columns_.size());
  uint32_t off = 0;
  for (const auto& c : columns_) {
    offsets_.push_back(off);
    off += c.width();
  }
  tuple_size_ = off;
  for (size_t i = 0; i < columns_.size(); ++i) {
    for (size_t j = i + 1; j < columns_.size(); ++j) {
      SDW_CHECK_MSG(columns_[i].name != columns_[j].name,
                    "duplicate column %s", columns_[i].name.c_str());
    }
  }
}

int Schema::ColumnIndex(std::string_view name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

size_t Schema::MustColumnIndex(std::string_view name) const {
  int i = ColumnIndex(name);
  SDW_CHECK_MSG(i >= 0, "no column named %.*s", static_cast<int>(name.size()),
                name.data());
  return static_cast<size_t>(i);
}

std::string_view Schema::GetChar(const std::byte* tuple, size_t col) const {
  std::string_view raw = GetCharRaw(tuple, col);
  size_t end = raw.size();
  while (end > 0 && raw[end - 1] == ' ') --end;
  return raw.substr(0, end);
}

void Schema::SetChar(std::byte* tuple, size_t col, std::string_view v) const {
  SDW_DCHECK(columns_[col].type == ColumnType::kChar);
  const uint32_t width = columns_[col].size;
  char* dst = reinterpret_cast<char*>(tuple + offsets_[col]);
  const size_t n = std::min<size_t>(v.size(), width);
  std::memcpy(dst, v.data(), n);
  std::memset(dst + n, ' ', width - n);
}

void Schema::CopyColumnTo(const std::byte* src, size_t src_col,
                          const Schema& dst, std::byte* dst_tuple,
                          size_t dst_col) const {
  const Column& s = columns_[src_col];
  SDW_DCHECK(s.type == dst.column(dst_col).type &&
             s.width() == dst.column(dst_col).width());
  std::memcpy(dst_tuple + dst.offset(dst_col), src + offsets_[src_col],
              s.width());
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ",";
    out += columns_[i].name;
    switch (columns_[i].type) {
      case ColumnType::kInt32:
        out += ":i32";
        break;
      case ColumnType::kInt64:
        out += ":i64";
        break;
      case ColumnType::kDouble:
        out += ":f64";
        break;
      case ColumnType::kChar:
        out += ":c" + std::to_string(columns_[i].size);
        break;
    }
  }
  out += ")";
  return out;
}

}  // namespace sdw::storage
