// Experiment driver reproducing the paper's measurement methodology (§5.1):
// batches of queries submitted at the same time (response-time experiments),
// closed-loop clients (throughput experiments), caches cleared before every
// measurement, and per-run reporting of average cores used, device read rate
// and the CPU-time breakdown.
//
// Both drivers are written once against core::ExecutorClient, so the same
// RunBatch/RunClosedLoop measure the integrated engine (all five paper
// configurations), the Volcano comparator, and any future backend. Ticket
// statuses are tallied into completed/cancelled/expired/failed so runs with
// deadlines or cancellation report tail behavior instead of hiding it.

#ifndef SDW_HARNESS_DRIVER_H_
#define SDW_HARNESS_DRIVER_H_

#include <array>
#include <functional>
#include <vector>

#include "baseline/volcano.h"
#include "common/breakdown.h"
#include "common/stats.h"
#include "core/engine.h"
#include "core/query_ticket.h"

namespace sdw::harness {

/// Everything measured in one experiment run.
struct RunMetrics {
  Stats response_seconds;   // per-query response times (completed queries)
  /// Queue wait (submit → first scheduling) of completed queries — the
  /// scheduler-visible half of the response time (see QueryMetrics).
  Stats queue_wait_seconds;
  /// Per-class response times in mixed-priority closed-loop runs (empty
  /// otherwise): the high-priority class is the one whose p99 the scheduler
  /// is defending against the low-priority flood.
  Stats response_seconds_high;
  Stats response_seconds_low;
  double makespan_seconds = 0;
  double avg_cores = 0;     // process CPU / wall over the activity period
  double read_mbps = 0;     // simulated device transfer rate
  uint64_t device_bytes = 0;
  uint64_t completed = 0;   // terminal kOk
  uint64_t cancelled = 0;   // terminal kCancelled
  uint64_t expired = 0;     // terminal kDeadlineExceeded
  uint64_t failed = 0;      // any other terminal error
  double throughput_qph = 0;  // closed-loop runs only

  // Engine-specific sharing counters; zeroes for backends without them.
  qpipe::SpCounters sp;
  uint64_t cjoin_shares = 0;
  cjoin::CjoinStats cjoin;
  std::array<double, kNumComponents> breakdown_seconds{};
};

/// Closed-loop run shape: `clients` threads, each submitting its next query
/// as soon as the previous completes, until `duration_seconds` elapses.
struct ClosedLoopOptions {
  size_t clients = 1;
  double duration_seconds = 1.0;
  /// Per-query deadline, relative to its submission (0 = none): each
  /// request is submitted with deadline_nanos = now + this. Expired queries
  /// count into RunMetrics::expired — the tail-behavior knob.
  int64_t client_deadline_nanos = 0;
  /// Mixed-priority client mode: the first `high_priority_clients` threads
  /// submit at `high_priority`, the rest at `low_priority`; per-class
  /// response times land in RunMetrics::response_seconds_{high,low}. 0
  /// keeps the classic single-class shape (every client at low_priority).
  size_t high_priority_clients = 0;
  int high_priority = 10;
  int low_priority = 0;
};

/// Clears buffer-pool residency, device counters/cache, breakdown buckets
/// and engine share counters — the paper's "clear caches before every
/// measurement".
void ClearCaches(storage::BufferPool* pool);

/// Runs one simultaneous batch on any ExecutorClient backend.
/// When `verify_against` is non-null, every successfully completed query is
/// re-executed on the Volcano comparator and results must match (used by
/// tests/examples). `opts` applies to every query of the batch.
RunMetrics RunBatch(core::ExecutorClient* client, storage::BufferPool* pool,
                    const std::vector<query::StarQuery>& queries,
                    bool clear_caches = true,
                    const baseline::VolcanoEngine* verify_against = nullptr,
                    const core::SubmitOptions& opts = core::SubmitOptions());

/// Closed-loop run: client c submits make_query(i) for the i-th request as
/// soon as the previous completes; stops issuing after the duration and
/// drains.
RunMetrics RunClosedLoop(
    core::ExecutorClient* client, storage::BufferPool* pool,
    const std::function<query::StarQuery(size_t)>& make_query,
    const ClosedLoopOptions& options);

/// Convenience overload with the classic (clients, seconds) shape.
inline RunMetrics RunClosedLoop(
    core::ExecutorClient* client, storage::BufferPool* pool,
    const std::function<query::StarQuery(size_t)>& make_query, size_t clients,
    double duration_seconds) {
  ClosedLoopOptions options;
  options.clients = clients;
  options.duration_seconds = duration_seconds;
  return RunClosedLoop(client, pool, make_query, options);
}

}  // namespace sdw::harness

#endif  // SDW_HARNESS_DRIVER_H_
