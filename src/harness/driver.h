// Experiment driver reproducing the paper's measurement methodology (§5.1):
// batches of queries submitted at the same time (response-time experiments),
// closed-loop clients (throughput experiments), caches cleared before every
// measurement, and per-run reporting of average cores used, device read rate
// and the CPU-time breakdown.

#ifndef SDW_HARNESS_DRIVER_H_
#define SDW_HARNESS_DRIVER_H_

#include <array>
#include <functional>
#include <vector>

#include "baseline/volcano.h"
#include "common/breakdown.h"
#include "common/stats.h"
#include "core/engine.h"

namespace sdw::harness {

/// Everything measured in one experiment run.
struct RunMetrics {
  Stats response_seconds;   // per-query response times
  double makespan_seconds = 0;
  double avg_cores = 0;     // process CPU / wall over the activity period
  double read_mbps = 0;     // simulated device transfer rate
  uint64_t device_bytes = 0;
  uint64_t completed = 0;
  double throughput_qph = 0;  // closed-loop runs only

  qpipe::SpCounters sp;
  uint64_t cjoin_shares = 0;
  cjoin::CjoinStats cjoin;
  std::array<double, kNumComponents> breakdown_seconds{};
};

/// Clears buffer-pool residency, device counters/cache, breakdown buckets
/// and engine share counters — the paper's "clear caches before every
/// measurement".
void ClearCaches(storage::BufferPool* pool);

/// Runs one simultaneous batch on the integrated engine.
/// When `verify_against` is non-null, every query is re-executed on the
/// Volcano comparator and results must match (used by tests/examples).
RunMetrics RunBatch(core::Engine* engine, storage::BufferPool* pool,
                    const std::vector<query::StarQuery>& queries,
                    bool clear_caches = true,
                    const baseline::VolcanoEngine* verify_against = nullptr);

/// Closed-loop run: `clients` threads; client c submits make_query(i) for
/// its i-th request as soon as the previous completes; stops issuing after
/// `duration_seconds` and drains.
RunMetrics RunClosedLoop(core::Engine* engine, storage::BufferPool* pool,
                         const std::function<query::StarQuery(size_t)>& make_query,
                         size_t clients, double duration_seconds);

/// Batch run on the Volcano comparator: one thread per query, no sharing.
RunMetrics RunVolcanoBatch(const baseline::VolcanoEngine* engine,
                           storage::BufferPool* pool,
                           const std::vector<query::StarQuery>& queries,
                           bool clear_caches = true);

/// Closed-loop run on the Volcano comparator.
RunMetrics RunVolcanoClosedLoop(
    const baseline::VolcanoEngine* engine, storage::BufferPool* pool,
    const std::function<query::StarQuery(size_t)>& make_query, size_t clients,
    double duration_seconds);

}  // namespace sdw::harness

#endif  // SDW_HARNESS_DRIVER_H_
