// Reporting helpers for the benchmark binaries: aligned tables (the series
// each figure plots) and shape checks that compare the measured trends
// against the paper's claims (ordering, crossover, improvement factors).

#ifndef SDW_HARNESS_REPORT_H_
#define SDW_HARNESS_REPORT_H_

#include <string>
#include <vector>

namespace sdw::harness {

/// Fixed-width text table.
class ReportTable {
 public:
  explicit ReportTable(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells);
  /// Renders with column alignment.
  std::string ToString() const;
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Records PASS/CHECK verdicts on the paper's qualitative claims.
class ShapeChecker {
 public:
  /// Asserts a <= b * (1 + slack); records verdict.
  void Leq(const std::string& claim, double a, double b, double slack = 0.10);
  /// Asserts a >= b * factor (improvement-factor claims).
  void FactorAtLeast(const std::string& claim, double a, double b,
                     double factor);
  /// Records an arbitrary verdict.
  void Check(const std::string& claim, bool ok, const std::string& detail);

  /// Prints all verdicts; returns the number of failed checks.
  int Summarize() const;

 private:
  struct Entry {
    std::string claim;
    bool ok;
    std::string detail;
  };
  std::vector<Entry> entries_;
};

/// "12.3m" / "45.6s" / "789ms" rendering.
std::string FormatSeconds(double seconds);

}  // namespace sdw::harness

#endif  // SDW_HARNESS_REPORT_H_
