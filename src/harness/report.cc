#include "harness/report.h"

#include <algorithm>
#include <cstdio>

#include "common/str_util.h"

namespace sdw::harness {

void ReportTable::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string ReportTable::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      line += "  ";
      line += cell;
      line.append(widths[c] - cell.size(), ' ');
    }
    return line + "\n";
  };
  std::string out = render_row(headers_);
  std::string rule;
  for (size_t c = 0; c < widths.size(); ++c) {
    rule += "  ";
    rule.append(widths[c], '-');
  }
  out += rule + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void ReportTable::Print() const { std::fputs(ToString().c_str(), stdout); }

void ShapeChecker::Leq(const std::string& claim, double a, double b,
                       double slack) {
  const bool ok = a <= b * (1.0 + slack);
  entries_.push_back(
      {claim, ok, StrPrintf("%.3f <= %.3f (+%.0f%% slack)", a, b, slack * 100)});
}

void ShapeChecker::FactorAtLeast(const std::string& claim, double a, double b,
                                 double factor) {
  const bool ok = a >= b * factor;
  entries_.push_back(
      {claim, ok, StrPrintf("%.3f >= %.3f x %.2f", a, b, factor)});
}

void ShapeChecker::Check(const std::string& claim, bool ok,
                         const std::string& detail) {
  entries_.push_back({claim, ok, detail});
}

int ShapeChecker::Summarize() const {
  int failed = 0;
  std::printf("\nShape checks vs. the paper's claims:\n");
  for (const auto& e : entries_) {
    std::printf("  [%s] %s  (%s)\n", e.ok ? "PASS" : "CHECK", e.claim.c_str(),
                e.detail.c_str());
    if (!e.ok) ++failed;
  }
  std::printf("%d/%zu checks passed\n", static_cast<int>(entries_.size()) - failed,
              entries_.size());
  return failed;
}

std::string FormatSeconds(double seconds) {
  if (seconds >= 60) return StrPrintf("%.1fm", seconds / 60);
  if (seconds >= 1) return StrPrintf("%.2fs", seconds);
  return StrPrintf("%.0fms", seconds * 1e3);
}

}  // namespace sdw::harness
