#include "harness/driver.h"

#include <atomic>
#include <thread>

#include "common/cpu_meter.h"
#include "common/timing.h"

namespace sdw::harness {

namespace {

void SnapshotBreakdown(RunMetrics* m) {
  for (int i = 0; i < kNumComponents; ++i) {
    m->breakdown_seconds[static_cast<size_t>(i)] =
        Breakdown::Global().Seconds(static_cast<Component>(i));
  }
}

void FinishMetrics(RunMetrics* m, const CpuMeter& meter,
                   const storage::StorageDevice& device) {
  m->makespan_seconds = meter.WallSeconds();
  m->avg_cores = meter.AvgCoresUsed();
  m->device_bytes = device.device_bytes_read();
  m->read_mbps = m->makespan_seconds > 0
                     ? static_cast<double>(m->device_bytes) / 1e6 /
                           m->makespan_seconds
                     : 0;
  SnapshotBreakdown(m);
}

}  // namespace

void ClearCaches(storage::BufferPool* pool) {
  pool->Clear();
  pool->device()->ResetStats();
  Breakdown::Global().Reset();
}

RunMetrics RunBatch(core::Engine* engine, storage::BufferPool* pool,
                    const std::vector<query::StarQuery>& queries,
                    bool clear_caches,
                    const baseline::VolcanoEngine* verify_against) {
  if (clear_caches) ClearCaches(pool);
  engine->ResetCounters();

  RunMetrics m;
  CpuMeter meter;
  meter.Start();
  const auto handles = engine->SubmitBatch(queries);
  for (const auto& h : handles) h->done.wait();
  meter.Stop();

  for (const auto& h : handles) {
    m.response_seconds.Add(h->response_seconds());
  }
  m.completed = handles.size();
  m.sp = engine->sp_counters();
  m.cjoin_shares = engine->cjoin_shares();
  m.cjoin = engine->cjoin_stats();
  FinishMetrics(&m, meter, *pool->device());

  if (verify_against != nullptr) {
    for (size_t i = 0; i < queries.size(); ++i) {
      const query::ResultSet expected = verify_against->Execute(queries[i]);
      const std::string diff =
          query::DiffResults(expected, handles[i]->result);
      SDW_CHECK_MSG(diff.empty(), "query %zu result mismatch: %s", i,
                    diff.c_str());
    }
  }
  return m;
}

RunMetrics RunClosedLoop(
    core::Engine* engine, storage::BufferPool* pool,
    const std::function<query::StarQuery(size_t)>& make_query, size_t clients,
    double duration_seconds) {
  ClearCaches(pool);
  engine->ResetCounters();

  RunMetrics m;
  std::atomic<size_t> next_query{0};
  std::atomic<uint64_t> completed{0};
  std::mutex resp_mu;
  Stats responses;

  CpuMeter meter;
  meter.Start();
  const int64_t deadline =
      NowNanos() + static_cast<int64_t>(duration_seconds * 1e9);

  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      while (NowNanos() < deadline) {
        const size_t i = next_query.fetch_add(1, std::memory_order_relaxed);
        auto handle = engine->Submit(make_query(i));
        handle->done.wait();
        completed.fetch_add(1, std::memory_order_relaxed);
        {
          std::unique_lock<std::mutex> lock(resp_mu);
          responses.Add(handle->response_seconds());
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  meter.Stop();

  m.completed = completed.load();
  m.response_seconds = responses;
  m.throughput_qph = meter.WallSeconds() > 0
                         ? static_cast<double>(m.completed) /
                               meter.WallSeconds() * 3600.0
                         : 0;
  m.sp = engine->sp_counters();
  m.cjoin_shares = engine->cjoin_shares();
  m.cjoin = engine->cjoin_stats();
  FinishMetrics(&m, meter, *pool->device());
  return m;
}

RunMetrics RunVolcanoBatch(const baseline::VolcanoEngine* engine,
                           storage::BufferPool* pool,
                           const std::vector<query::StarQuery>& queries,
                           bool clear_caches) {
  if (clear_caches) ClearCaches(pool);

  RunMetrics m;
  std::mutex resp_mu;
  Stats responses;

  CpuMeter meter;
  meter.Start();
  std::vector<std::thread> threads;
  threads.reserve(queries.size());
  for (const auto& q : queries) {
    threads.emplace_back([&, query = q] {
      WallTimer timer;
      const query::ResultSet result = engine->Execute(query);
      (void)result;
      std::unique_lock<std::mutex> lock(resp_mu);
      responses.Add(timer.ElapsedSeconds());
    });
  }
  for (auto& t : threads) t.join();
  meter.Stop();

  m.completed = queries.size();
  m.response_seconds = responses;
  FinishMetrics(&m, meter, *pool->device());
  return m;
}

RunMetrics RunVolcanoClosedLoop(
    const baseline::VolcanoEngine* engine, storage::BufferPool* pool,
    const std::function<query::StarQuery(size_t)>& make_query, size_t clients,
    double duration_seconds) {
  ClearCaches(pool);

  RunMetrics m;
  std::atomic<size_t> next_query{0};
  std::atomic<uint64_t> completed{0};
  std::mutex resp_mu;
  Stats responses;

  CpuMeter meter;
  meter.Start();
  const int64_t deadline =
      NowNanos() + static_cast<int64_t>(duration_seconds * 1e9);

  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      while (NowNanos() < deadline) {
        const size_t i = next_query.fetch_add(1, std::memory_order_relaxed);
        WallTimer timer;
        const query::ResultSet result = engine->Execute(make_query(i));
        (void)result;
        completed.fetch_add(1, std::memory_order_relaxed);
        {
          std::unique_lock<std::mutex> lock(resp_mu);
          responses.Add(timer.ElapsedSeconds());
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  meter.Stop();

  m.completed = completed.load();
  m.response_seconds = responses;
  m.throughput_qph = meter.WallSeconds() > 0
                         ? static_cast<double>(m.completed) /
                               meter.WallSeconds() * 3600.0
                         : 0;
  FinishMetrics(&m, meter, *pool->device());
  return m;
}

}  // namespace sdw::harness
