#include "harness/driver.h"

#include <atomic>
#include <thread>

#include "common/cpu_meter.h"
#include "common/mutex.h"
#include "common/timing.h"

namespace sdw::harness {

namespace {

void SnapshotBreakdown(RunMetrics* m) {
  for (int i = 0; i < kNumComponents; ++i) {
    m->breakdown_seconds[static_cast<size_t>(i)] =
        Breakdown::Global().Seconds(static_cast<Component>(i));
  }
}

void FinishMetrics(RunMetrics* m, const CpuMeter& meter,
                   const storage::StorageDevice& device) {
  m->makespan_seconds = meter.WallSeconds();
  m->avg_cores = meter.AvgCoresUsed();
  m->device_bytes = device.device_bytes_read();
  m->read_mbps = m->makespan_seconds > 0
                     ? static_cast<double>(m->device_bytes) / 1e6 /
                           m->makespan_seconds
                     : 0;
  SnapshotBreakdown(m);
}

/// Buckets one terminal status into the run's outcome counters.
void TallyOutcome(const Status& s, RunMetrics* m) {
  switch (s.code()) {
    case StatusCode::kOk:
      ++m->completed;
      break;
    case StatusCode::kCancelled:
      ++m->cancelled;
      break;
    case StatusCode::kDeadlineExceeded:
      ++m->expired;
      break;
    default:
      ++m->failed;
      break;
  }
}

/// Engine-specific sharing counters, when the backend is the integrated
/// engine; other ExecutorClients report zeroes.
void CollectEngineStats(core::ExecutorClient* client, RunMetrics* m) {
  if (auto* engine = dynamic_cast<core::Engine*>(client)) {
    m->sp = engine->sp_counters();
    m->cjoin_shares = engine->cjoin_shares();
    m->cjoin = engine->cjoin_stats();
  }
}

}  // namespace

void ClearCaches(storage::BufferPool* pool) {
  pool->Clear();
  pool->device()->ResetStats();
  Breakdown::Global().Reset();
}

RunMetrics RunBatch(core::ExecutorClient* client, storage::BufferPool* pool,
                    const std::vector<query::StarQuery>& queries,
                    bool clear_caches,
                    const baseline::VolcanoEngine* verify_against,
                    const core::SubmitOptions& opts) {
  if (clear_caches) ClearCaches(pool);
  client->ResetCounters();

  RunMetrics m;
  CpuMeter meter;
  meter.Start();
  const auto tickets = client->SubmitBatch(queries, opts);
  std::vector<Status> finals;
  finals.reserve(tickets.size());
  for (const auto& t : tickets) finals.push_back(t.Wait());
  client->WaitAll();
  meter.Stop();

  for (size_t i = 0; i < tickets.size(); ++i) {
    TallyOutcome(finals[i], &m);
    if (finals[i].ok()) {
      const core::QueryMetrics qm = tickets[i].metrics();
      m.response_seconds.Add(qm.response_seconds());
      m.queue_wait_seconds.Add(qm.queue_wait_seconds());
    }
  }
  CollectEngineStats(client, &m);
  FinishMetrics(&m, meter, *pool->device());

  if (verify_against != nullptr) {
    for (size_t i = 0; i < queries.size(); ++i) {
      if (!finals[i].ok()) continue;  // only completed queries have results
      const query::ResultSet expected = verify_against->Execute(queries[i]);
      const std::string diff =
          query::DiffResults(expected, tickets[i].result());
      SDW_CHECK_MSG(diff.empty(), "query %zu result mismatch: %s", i,
                    diff.c_str());
    }
  }
  return m;
}

RunMetrics RunClosedLoop(
    core::ExecutorClient* client, storage::BufferPool* pool,
    const std::function<query::StarQuery(size_t)>& make_query,
    const ClosedLoopOptions& options) {
  ClearCaches(pool);
  client->ResetCounters();

  RunMetrics m;
  std::atomic<size_t> next_query{0};
  Mutex tally_mu{lock_rank::Rank::kLeaf};  // pure tally; never nests
  Stats responses;
  Stats queue_waits;
  Stats responses_high;
  Stats responses_low;
  RunMetrics outcomes;  // counter fields only, merged under tally_mu

  CpuMeter meter;
  meter.Start();
  const int64_t run_deadline =
      NowNanos() +
      static_cast<int64_t>(options.duration_seconds * 1e9);

  std::vector<std::thread> threads;
  threads.reserve(options.clients);
  for (size_t c = 0; c < options.clients; ++c) {
    const bool high_class = c < options.high_priority_clients;
    threads.emplace_back([&, high_class] {
      while (NowNanos() < run_deadline) {
        const size_t i = next_query.fetch_add(1, std::memory_order_relaxed);
        core::SubmitOptions opts;
        opts.priority =
            high_class ? options.high_priority : options.low_priority;
        if (options.client_deadline_nanos != 0) {
          opts.deadline_nanos = NowNanos() + options.client_deadline_nanos;
        }
        auto ticket = client->Submit(make_query(i), opts);
        const Status s = ticket.Wait();
        // Snapshot metrics BEFORE taking tally_mu: metrics() locks the
        // query lifecycle, and a leaf-ranked lock must hold nothing else.
        const core::QueryMetrics qm = s.ok() ? ticket.metrics()
                                             : core::QueryMetrics{};
        {
          MutexLock lock(tally_mu);
          TallyOutcome(s, &outcomes);
          if (s.ok()) {
            responses.Add(qm.response_seconds());
            queue_waits.Add(qm.queue_wait_seconds());
            if (options.high_priority_clients > 0) {
              (high_class ? responses_high : responses_low)
                  .Add(qm.response_seconds());
            }
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  client->WaitAll();
  meter.Stop();

  m.completed = outcomes.completed;
  m.cancelled = outcomes.cancelled;
  m.expired = outcomes.expired;
  m.failed = outcomes.failed;
  m.response_seconds = responses;
  m.queue_wait_seconds = queue_waits;
  m.response_seconds_high = responses_high;
  m.response_seconds_low = responses_low;
  m.throughput_qph = meter.WallSeconds() > 0
                         ? static_cast<double>(m.completed) /
                               meter.WallSeconds() * 3600.0
                         : 0;
  CollectEngineStats(client, &m);
  FinishMetrics(&m, meter, *pool->device());
  return m;
}

}  // namespace sdw::harness
