#include "qpipe/engine.h"

#include "common/breakdown.h"
#include "common/fault_injector.h"
#include "common/timing.h"
#include "qpipe/operators.h"
#include "query/plan.h"

namespace sdw::qpipe {

using query::PlanNode;

QpipeEngine::QpipeEngine(const storage::Catalog* catalog,
                         storage::BufferPool* pool, QpipeOptions options)
    : catalog_(catalog), pool_(pool), options_(options) {
  sched_ = options_.scheduler;
  if (sched_ == nullptr) {
    owned_scheduler_ = std::make_unique<core::Scheduler>();
    sched_ = owned_scheduler_.get();
  }
  scan_services_ = std::make_unique<CircularScanMap>(pool_, options_.comm,
                                                     options_.channel_bytes);
  // Every run queue in the engine follows the scheduler's one policy —
  // priority with FIFO fairness and aging, or plain FIFO when disabled.
  ThreadPoolOptions stage_pool;
  stage_pool.max_threads = options_.stage_max_workers;
  stage_pool.run_queue = sched_->run_queue_options();
  scan_stage_ = std::make_unique<Stage>("tscan", stage_pool);
  join_stage_ = std::make_unique<Stage>("hjoin", stage_pool);
  agg_stage_ = std::make_unique<Stage>("agg", stage_pool);
  sort_stage_ = std::make_unique<Stage>("sort", stage_pool);
  ThreadPoolOptions sink_pool_opts;  // never capped: drains must always run
  sink_pool_opts.run_queue = sched_->run_queue_options();
  sink_pool_ = std::make_unique<ThreadPool>("sink", sink_pool_opts);
}

QpipeEngine::~QpipeEngine() { WaitAll(); }

QpipeEngine::Stage* QpipeEngine::StageFor(PlanNode::Kind kind) {
  switch (kind) {
    case PlanNode::Kind::kScan:
      return scan_stage_.get();
    case PlanNode::Kind::kHashJoin:
      return join_stage_.get();
    case PlanNode::Kind::kAggregate:
      return agg_stage_.get();
    case PlanNode::Kind::kSort:
      return sort_stage_.get();
  }
  SDW_CHECK(false);
  return nullptr;
}

bool QpipeEngine::SpEnabledFor(PlanNode::Kind kind) const {
  switch (kind) {
    case PlanNode::Kind::kScan:
      return options_.sp_scan;
    case PlanNode::Kind::kHashJoin:
      return options_.sp_join;
    case PlanNode::Kind::kAggregate:
      return options_.sp_agg;
    case PlanNode::Kind::kSort:
      return options_.sp_sort;
  }
  return false;
}

int QpipeEngine::JoinDepth(const PlanNode* node) {
  int depth = 0;
  for (const auto& child : node->children) {
    if (child->kind == PlanNode::Kind::kHashJoin) {
      depth += JoinDepth(child.get());
    }
  }
  return depth + (node->kind == PlanNode::Kind::kHashJoin ? 1 : 0);
}

void QpipeEngine::RecordShare(const PlanNode* node) {
  MutexLock lock(mu_);
  switch (node->kind) {
    case PlanNode::Kind::kScan:
      ++counters_.scan_shares;
      break;
    case PlanNode::Kind::kHashJoin: {
      const int depth = JoinDepth(node);
      const size_t slot =
          std::min<size_t>(static_cast<size_t>(depth) - 1,
                           counters_.join_shares_by_depth.size() - 1);
      ++counters_.join_shares_by_depth[slot];
      break;
    }
    case PlanNode::Kind::kAggregate:
      ++counters_.agg_shares;
      break;
    case PlanNode::Kind::kSort:
      ++counters_.sort_shares;
      break;
  }
}

std::unique_ptr<core::PageSource> QpipeEngine::BuildProducer(
    const QueryHandle& ctx, const PlanNode* node,
    std::vector<std::function<void()>>* deferred,
    std::vector<HostRef>* host_path) {
  // GQP integration: delegate whole aggregate-over-join sub-plans (shared
  // aggregation) or bare join sub-plans to the CJOIN stage.
  if (agg_delegate_ && node->kind == PlanNode::Kind::kAggregate &&
      !node->children.empty() &&
      node->child(0)->kind == PlanNode::Kind::kHashJoin) {
    return agg_delegate_(ctx.get(), node, deferred);
  }
  if (join_delegate_ && node->kind == PlanNode::Kind::kHashJoin) {
    return join_delegate_(ctx.get(), node, deferred);
  }

  Stage* stage = StageFor(node->kind);
  const bool sp_on = SpEnabledFor(node->kind);

  // Simultaneous Pipelining: attach as a satellite when an identical
  // sub-plan is in flight with an open window of opportunity. The attaching
  // query's lifecycle is recorded against the host so the host's owner can
  // cancel without starving satellites (see SpRegistry).
  if (sp_on) {
    if (auto src = stage->registry.TryAttach(node->signature, ctx->life)) {
      RecordShare(node);
      // The satellite's work is scheduled with the host's: from here on the
      // query waits on production, not on a run queue.
      ctx->life->MarkRunStart();
      if (node == ctx->plan.get()) ctx->life->SetFullyShared();
      return src;
    }
  }

  // Host path: own exchange + packet.
  std::shared_ptr<Exchange> ex =
      MakeExchange(options_.comm, options_.channel_bytes);
  auto primary = ex->OpenPrimaryReader();
  // Ancestor snapshot BEFORE registering self: on abort, this packet fails
  // the consumers of every host above it (their streams truncate through
  // ordinary EOS), while its own consumers are handled atomically below.
  auto ancestors = std::make_shared<std::vector<HostRef>>(*host_path);
  if (sp_on) {
    stage->registry.Register(node->signature, ex, ctx->life);
    host_path->push_back({stage, node, ex});
  }

  // Wire children before deferring our own dispatch.
  auto inputs =
      std::make_shared<std::vector<std::shared_ptr<core::PageSource>>>();
  for (const auto& child : node->children) {
    inputs->push_back(BuildProducer(ctx, child.get(), deferred, host_path));
  }
  if (sp_on) host_path->pop_back();

  // The packet closure shares ownership of the query context: `node` points
  // into ctx->plan, and the submitting client may drop its handle as soon as
  // the results drain — which can happen between our Close() and the
  // registry Unregister below (or even mid-operator for a fast consumer).
  deferred->push_back([this, ctx, node, ex, inputs, sp_on, stage, ancestors] {
    // Stage dispatch pops by effective priority. A host packet's priority
    // is dynamic: the registry reports the max over its attached consumers
    // at pop time, so a satellite attaching at high priority boosts the
    // queued host (priority inheritance across shared work).
    const int base_priority = core::Scheduler::PriorityOf(ctx->life.get());
    std::function<int()> dynamic;
    if (sp_on) {
      dynamic = [stage, sig = node->signature, ex, base_priority] {
        return stage->registry.MaxConsumerPriority(sig, ex.get(),
                                                   base_priority);
      };
    }
    stage->pool.Submit(
        [this, ctx, node, ex, inputs, sp_on, stage, ancestors] {
      ctx->life->MarkRunStart();
      // Silent-hang guard: a packet that stops early — consumers vanished,
      // a fault below us threw, or the operator surfaced a storage error —
      // must complete every ticket it feeds with an error instead of
      // leaving a truncated stream that drains as a seemingly-complete
      // result: its own consumers (atomically, so no late satellite can
      // attach to the aborted producer), the consumers of every ancestor
      // host, and for faults (anything but consumer-driven kCancelled) the
      // owner itself.
      Status why =
          Status::Cancelled("shared producer stopped: consumers detached");
      try {
        Status injected = FaultInjector::Global().Check("qpipe.packet");
        why = injected.ok() ? RunPacket(node, ex.get(), *inputs) : injected;
        if (!why.ok() && why.code() != StatusCode::kCancelled) {
          for (const auto& in : *inputs) in->CancelReader();
          ctx->life->Finish(why);
        }
      } catch (const std::exception& e) {
        for (const auto& in : *inputs) in->CancelReader();
        why = Status::Internal(std::string("packet worker exception: ") +
                               e.what());
        ctx->life->Finish(why);
      } catch (...) {
        for (const auto& in : *inputs) in->CancelReader();
        why = Status::Internal("packet worker exception");
        ctx->life->Finish(why);
      }
      if (why.ok()) {
        ex->sink()->Close();
        if (sp_on) stage->registry.Unregister(node->signature, ex.get());
      } else {
        if (sp_on) {
          stage->registry.UnregisterAborted(node->signature, ex.get(), why);
        }
        for (const auto& h : *ancestors) {
          h.stage->registry.FinishConsumers(h.node->signature, h.ex.get(),
                                            why);
        }
        ex->sink()->Close();
      }
        },
        base_priority, std::move(dynamic));
  });
  return primary;
}

Status QpipeEngine::RunPacket(
    const PlanNode* node, Exchange* ex,
    const std::vector<std::shared_ptr<core::PageSource>>& inputs) {
  switch (node->kind) {
    case PlanNode::Kind::kScan: {
      std::unique_ptr<core::PageSource> raw;
      if (options_.sp_scan) {
        raw = scan_services_->Get(node->table)->Attach();
      }
      return RunScan(*node, raw.get(), pool_, ex->sink());
    }
    case PlanNode::Kind::kHashJoin:
      return RunHashJoin(*node, inputs[0].get(), inputs[1].get(), ex->sink());
    case PlanNode::Kind::kAggregate:
      return RunAggregate(*node, inputs[0].get(), ex->sink());
    case PlanNode::Kind::kSort:
      return RunSort(*node, inputs[0].get(), ex->sink());
  }
  return Status::Ok();
}

std::vector<QueryHandle> QpipeEngine::SubmitRequests(
    const std::vector<core::SubmitRequest>& requests) {
  const query::Planner planner(catalog_);
  std::vector<QueryHandle> handles;
  handles.reserve(requests.size());
  std::vector<std::function<void()>> deferred;
  // Parallel to handles; null for queries rejected before wiring.
  std::vector<std::shared_ptr<core::PageSource>> readers;
  readers.reserve(requests.size());

  // Phase 1: wire every query's packets. Hosts registered here are visible
  // to later queries in the same batch, so common sub-plans attach before
  // anything runs — the "all queries arrive at the same time" setup.
  for (const core::SubmitRequest& req : requests) {
    auto ctx = std::make_shared<QueryContext>();
    ctx->qid = next_qid_.fetch_add(1, std::memory_order_relaxed);
    ctx->life = std::make_shared<core::QueryLifecycle>(ctx->qid, req.opts);
    ctx->life->set_submit_nanos(NowNanos());
    // Deadline-driven admission: an already-expired query is rejected
    // before costing any wiring or packet work.
    if (req.opts.deadline_nanos != 0 &&
        NowNanos() > req.opts.deadline_nanos) {
      ctx->life->Finish(
          Status::DeadlineExceeded("deadline expired before admission"));
      readers.push_back(nullptr);
      handles.push_back(std::move(ctx));
      continue;
    }
    // Deadline tickets are the timer wheel's: expiry fires RequestCancel
    // promptly even while the drain is blocked in Next() with no page or
    // EOS on the way.
    sched_->WatchDeadline(ctx->life);
    ctx->query = req.q;
    ctx->plan = planner.BuildPlan(req.q);
    ctx->result().set_schema(ctx->plan->out_schema);
    std::vector<HostRef> host_path;  // per-query ancestor-host stack
    readers.push_back(
        BuildProducer(ctx, ctx->plan.get(), &deferred, &host_path));
    handles.push_back(std::move(ctx));
  }

  {
    MutexLock lock(mu_);
    for (size_t i = 0; i < handles.size(); ++i) {
      if (readers[i] != nullptr) active_.push_back(handles[i]);
    }
  }

  // Phase 2: dispatch packets, then result sinks.
  for (auto& d : deferred) d();
  if (batch_flush_) batch_flush_();
  for (size_t i = 0; i < handles.size(); ++i) {
    if (readers[i] == nullptr) continue;  // rejected before wiring
    QueryHandle ctx = handles[i];
    std::shared_ptr<core::PageSource> reader = readers[i];
    // Cancel hook: cancelling the query cancels its root reader, which
    // wakes a blocked drain below and — via PageSink::Abandoned — unwinds
    // the producer chain. Shared producers keep running while any satellite
    // still reads them (the host merely detaches).
    ctx->life->SetCancelCallback([reader] { reader->CancelReader(); });
    sink_pool_->Submit([this, ctx, reader] { DrainResult(ctx, reader.get()); },
                       core::Scheduler::PriorityOf(ctx->life.get()));
  }
  return handles;
}

std::vector<QueryHandle> QpipeEngine::SubmitBatch(
    const std::vector<query::StarQuery>& queries,
    const core::SubmitOptions& opts) {
  std::vector<core::SubmitRequest> requests;
  requests.reserve(queries.size());
  for (const query::StarQuery& q : queries) requests.push_back({q, opts});
  return SubmitRequests(requests);
}

void QpipeEngine::DrainResult(const QueryHandle& ctx,
                              core::PageSource* reader) {
  core::QueryLifecycle* life = ctx->life.get();
  query::ResultSet* result = life->mutable_result();
  const uint64_t row_limit = life->options().row_limit;
  Status final_status = Status::Ok();
  bool stopped = false;
  try {
    while (storage::PagePtr page = reader->Next()) {
      // Exchange-boundary lifecycle check: cancellation or an expired
      // deadline stops the drain between pages.
      if (life->ShouldStop(&final_status)) {
        stopped = true;
        break;
      }
      ScopedComponentTimer t(Component::kMisc);
      const uint32_t n = page->tuple_count();
      const size_t rows_before = result->num_rows();
      result->Reserve(rows_before + n);
      for (uint32_t r = 0; r < n; ++r) {
        result->AddRow(page->tuple(r));
        if (row_limit != 0 && result->num_rows() >= row_limit) {
          stopped = true;  // client-requested truncation: still kOk
          break;
        }
      }
      life->AddPagesRead(1);
      life->AddRowsStreamed(result->num_rows() - rows_before);
      if (stopped) break;
    }
    // The cancel hook may have cancelled the reader while the drain was
    // blocked in Next(): the stream then ends early and the loop exits
    // without seeing ShouldStop, so re-check before declaring success.
    if (!stopped && final_status.ok()) {
      Status why;
      if (life->ShouldStop(&why)) final_status = why;
    }
  } catch (const std::exception& e) {
    final_status =
        Status::Internal(std::string("result drain exception: ") + e.what());
    stopped = true;
  } catch (...) {
    final_status = Status::Internal("result drain exception");
    stopped = true;
  }
  if (stopped) reader->CancelReader();
  {
    MutexLock lock(mu_);
    std::erase(active_, ctx);
  }
  life->Finish(std::move(final_status));
}

QueryHandle QpipeEngine::Submit(const query::StarQuery& q,
                                const core::SubmitOptions& opts) {
  return SubmitBatch({q}, opts)[0];
}

void QpipeEngine::WaitAll() {
  while (true) {
    QueryHandle h;
    {
      MutexLock lock(mu_);
      if (active_.empty()) return;
      h = active_.back();
    }
    h->life->Wait();
  }
}

SpCounters QpipeEngine::sp_counters() const {
  MutexLock lock(mu_);
  return counters_;
}

void QpipeEngine::ResetSpCounters() {
  MutexLock lock(mu_);
  counters_ = SpCounters{};
}

}  // namespace sdw::qpipe
