#include "qpipe/engine.h"

#include "common/breakdown.h"
#include "common/timing.h"
#include "qpipe/operators.h"
#include "query/plan.h"

namespace sdw::qpipe {

using query::PlanNode;

QpipeEngine::QpipeEngine(const storage::Catalog* catalog,
                         storage::BufferPool* pool, QpipeOptions options)
    : catalog_(catalog), pool_(pool), options_(options) {
  scan_services_ = std::make_unique<CircularScanMap>(pool_, options_.comm,
                                                     options_.channel_bytes);
  scan_stage_ = std::make_unique<Stage>("tscan");
  join_stage_ = std::make_unique<Stage>("hjoin");
  agg_stage_ = std::make_unique<Stage>("agg");
  sort_stage_ = std::make_unique<Stage>("sort");
}

QpipeEngine::~QpipeEngine() { WaitAll(); }

QpipeEngine::Stage* QpipeEngine::StageFor(PlanNode::Kind kind) {
  switch (kind) {
    case PlanNode::Kind::kScan:
      return scan_stage_.get();
    case PlanNode::Kind::kHashJoin:
      return join_stage_.get();
    case PlanNode::Kind::kAggregate:
      return agg_stage_.get();
    case PlanNode::Kind::kSort:
      return sort_stage_.get();
  }
  SDW_CHECK(false);
  return nullptr;
}

bool QpipeEngine::SpEnabledFor(PlanNode::Kind kind) const {
  switch (kind) {
    case PlanNode::Kind::kScan:
      return options_.sp_scan;
    case PlanNode::Kind::kHashJoin:
      return options_.sp_join;
    case PlanNode::Kind::kAggregate:
      return options_.sp_agg;
    case PlanNode::Kind::kSort:
      return options_.sp_sort;
  }
  return false;
}

int QpipeEngine::JoinDepth(const PlanNode* node) {
  int depth = 0;
  for (const auto& child : node->children) {
    if (child->kind == PlanNode::Kind::kHashJoin) {
      depth += JoinDepth(child.get());
    }
  }
  return depth + (node->kind == PlanNode::Kind::kHashJoin ? 1 : 0);
}

void QpipeEngine::RecordShare(const PlanNode* node) {
  std::unique_lock<std::mutex> lock(mu_);
  switch (node->kind) {
    case PlanNode::Kind::kScan:
      ++counters_.scan_shares;
      break;
    case PlanNode::Kind::kHashJoin: {
      const int depth = JoinDepth(node);
      const size_t slot =
          std::min<size_t>(static_cast<size_t>(depth) - 1,
                           counters_.join_shares_by_depth.size() - 1);
      ++counters_.join_shares_by_depth[slot];
      break;
    }
    case PlanNode::Kind::kAggregate:
      ++counters_.agg_shares;
      break;
    case PlanNode::Kind::kSort:
      ++counters_.sort_shares;
      break;
  }
}

std::unique_ptr<core::PageSource> QpipeEngine::BuildProducer(
    const QueryHandle& ctx, const PlanNode* node,
    std::vector<std::function<void()>>* deferred) {
  // GQP integration: delegate whole join sub-plans to the CJOIN stage.
  if (join_delegate_ && node->kind == PlanNode::Kind::kHashJoin) {
    return join_delegate_(ctx.get(), node, deferred);
  }

  Stage* stage = StageFor(node->kind);
  const bool sp_on = SpEnabledFor(node->kind);

  // Simultaneous Pipelining: attach as a satellite when an identical
  // sub-plan is in flight with an open window of opportunity.
  if (sp_on) {
    if (auto src = stage->registry.TryAttach(node->signature)) {
      RecordShare(node);
      return src;
    }
  }

  // Host path: own exchange + packet.
  std::shared_ptr<Exchange> ex =
      MakeExchange(options_.comm, options_.channel_bytes);
  auto primary = ex->OpenPrimaryReader();
  if (sp_on) stage->registry.Register(node->signature, ex);

  // Wire children before deferring our own dispatch.
  auto inputs =
      std::make_shared<std::vector<std::shared_ptr<core::PageSource>>>();
  for (const auto& child : node->children) {
    inputs->push_back(BuildProducer(ctx, child.get(), deferred));
  }

  // The packet closure shares ownership of the query context: `node` points
  // into ctx->plan, and the submitting client may drop its handle as soon as
  // the results drain — which can happen between our Close() and the
  // registry Unregister below (or even mid-operator for a fast consumer).
  deferred->push_back([this, ctx, node, ex, inputs, sp_on, stage] {
    stage->pool.Submit([this, ctx, node, ex, inputs, sp_on, stage] {
      RunPacket(node, ex.get(), *inputs);
      ex->sink()->Close();
      if (sp_on) stage->registry.Unregister(node->signature, ex.get());
    });
  });
  return primary;
}

void QpipeEngine::RunPacket(
    const PlanNode* node, Exchange* ex,
    const std::vector<std::shared_ptr<core::PageSource>>& inputs) {
  switch (node->kind) {
    case PlanNode::Kind::kScan: {
      std::unique_ptr<core::PageSource> raw;
      if (options_.sp_scan) {
        raw = scan_services_->Get(node->table)->Attach();
      }
      RunScan(*node, raw.get(), pool_, ex->sink());
      break;
    }
    case PlanNode::Kind::kHashJoin:
      RunHashJoin(*node, inputs[0].get(), inputs[1].get(), ex->sink());
      break;
    case PlanNode::Kind::kAggregate:
      RunAggregate(*node, inputs[0].get(), ex->sink());
      break;
    case PlanNode::Kind::kSort:
      RunSort(*node, inputs[0].get(), ex->sink());
      break;
  }
}

std::vector<QueryHandle> QpipeEngine::SubmitBatch(
    const std::vector<query::StarQuery>& queries) {
  const query::Planner planner(catalog_);
  std::vector<QueryHandle> handles;
  handles.reserve(queries.size());
  std::vector<std::function<void()>> deferred;
  std::vector<std::shared_ptr<core::PageSource>> readers;
  readers.reserve(queries.size());

  // Phase 1: wire every query's packets. Hosts registered here are visible
  // to later queries in the same batch, so common sub-plans attach before
  // anything runs — the "all queries arrive at the same time" setup.
  for (const query::StarQuery& q : queries) {
    auto ctx = std::make_shared<QueryContext>();
    ctx->qid = next_qid_.fetch_add(1, std::memory_order_relaxed);
    ctx->query = q;
    ctx->plan = planner.BuildPlan(q);
    ctx->done = ctx->promise.get_future().share();
    ctx->submit_nanos = NowNanos();
    ctx->result.set_schema(ctx->plan->out_schema);
    readers.push_back(BuildProducer(ctx, ctx->plan.get(), &deferred));
    handles.push_back(std::move(ctx));
  }

  {
    std::unique_lock<std::mutex> lock(mu_);
    for (const auto& h : handles) active_.push_back(h);
  }

  // Phase 2: dispatch packets, then result sinks.
  for (auto& d : deferred) d();
  if (batch_flush_) batch_flush_();
  for (size_t i = 0; i < handles.size(); ++i) {
    QueryHandle ctx = handles[i];
    std::shared_ptr<core::PageSource> reader = readers[i];
    sink_pool_.Submit([this, ctx, reader] {
      while (storage::PagePtr page = reader->Next()) {
        ScopedComponentTimer t(Component::kMisc);
        const uint32_t n = page->tuple_count();
        for (uint32_t r = 0; r < n; ++r) ctx->result.AddRow(page->tuple(r));
      }
      ctx->finish_nanos = NowNanos();
      {
        std::unique_lock<std::mutex> lock(mu_);
        std::erase(active_, ctx);
      }
      ctx->promise.set_value();
    });
  }
  return handles;
}

QueryHandle QpipeEngine::Submit(const query::StarQuery& q) {
  return SubmitBatch({q})[0];
}

void QpipeEngine::WaitAll() {
  while (true) {
    QueryHandle h;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (active_.empty()) return;
      h = active_.back();
    }
    h->done.wait();
  }
}

SpCounters QpipeEngine::sp_counters() const {
  std::unique_lock<std::mutex> lock(mu_);
  return counters_;
}

void QpipeEngine::ResetSpCounters() {
  std::unique_lock<std::mutex> lock(mu_);
  counters_ = SpCounters{};
}

}  // namespace sdw::qpipe
