// Chained hash table over int64 join keys, shared by the query-centric hash
// join and the CJOIN filters. Hand-rolled (rather than std::unordered_map) so
// the benchmark harness can attribute hash/equal work to the paper's
// "Hashing" CPU bucket separately from the rest of the join.

#ifndef SDW_QPIPE_HASH_TABLE_H_
#define SDW_QPIPE_HASH_TABLE_H_

#include <cstdint>
#include <vector>

#include "common/macros.h"

namespace sdw::qpipe {

/// Mixes a 64-bit key (splitmix64 finalizer).
inline uint64_t HashKey(int64_t key) {
  uint64_t z = static_cast<uint64_t>(key) + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Append-then-freeze chained table: Insert entries, Build(), then probe.
/// Inserting again un-freezes the table; Build() relinks from scratch (used
/// by CJOIN filters, whose tables grow at every admission pause). Values are
/// opaque 64-bit payloads (pointer or index).
class Int64HashTable {
 public:
  /// Appends an entry (pre-hashed by the caller so hash time is measured at
  /// the call site). Un-freezes a built table.
  void Insert(uint64_t hash, int64_t key, uint64_t value) {
    built_ = false;
    entries_.push_back({hash, key, value, kNone});
  }

  /// (Re)links buckets over all entries; idempotent.
  void Build();

  bool built() const { return built_; }
  size_t size() const { return entries_.size(); }

  /// Invokes `fn(value)` for every entry matching (hash, key).
  template <typename Fn>
  void ForEachMatch(uint64_t hash, int64_t key, Fn&& fn) const {
    SDW_DCHECK(built_);
    if (buckets_.empty()) return;
    uint32_t i = buckets_[hash & mask_];
    while (i != kNone) {
      const Entry& e = entries_[i];
      if (e.hash == hash && e.key == key) fn(e.value);
      i = e.next;
    }
  }

  /// Number of entries matching (hash, key).
  size_t CountMatches(uint64_t hash, int64_t key) const {
    size_t n = 0;
    ForEachMatch(hash, key, [&n](uint64_t) { ++n; });
    return n;
  }

  /// ProbeBatch result for keys with no matching entry.
  static constexpr uint64_t kMissValue = ~uint64_t{0};

  /// Batch-at-a-time probe: hashes the whole key array, software-prefetches
  /// bucket heads (and first chain nodes) in groups, then resolves chains.
  /// out_values[i] receives the value of the first matching entry in chain
  /// order, or kMissValue. For unique-key tables (e.g. the CJOIN filters,
  /// keyed by dimension PKs) this is the unique match.
  void ProbeBatch(const int64_t* keys, size_t n, uint64_t* out_values) const;

  /// All stored entries, for whole-table iteration (CJOIN admission).
  struct Entry {
    uint64_t hash;
    int64_t key;
    uint64_t value;
    uint32_t next;
  };
  const std::vector<Entry>& entries() const { return entries_; }

 private:
  static constexpr uint32_t kNone = ~uint32_t{0};

  std::vector<Entry> entries_;
  std::vector<uint32_t> buckets_;
  uint64_t mask_ = 0;
  bool built_ = false;
};

}  // namespace sdw::qpipe

#endif  // SDW_QPIPE_HASH_TABLE_H_
