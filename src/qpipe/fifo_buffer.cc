#include "qpipe/fifo_buffer.h"

namespace sdw::qpipe {

bool FifoBuffer::Put(storage::PagePtr page) {
  MutexLock lock(mu_);
  SDW_CHECK_MSG(!closed_, "Put after Close on FifoBuffer");
  while (max_bytes_ > 0 && bytes_ + storage::kPageSize > max_bytes_ &&
         !cancelled_) {
    producer_cv_.Wait(mu_);
  }
  if (cancelled_) return false;
  emitted_ = true;
  queue_.push_back(std::move(page));
  bytes_ += storage::kPageSize;
  consumer_cv_.NotifyOne();
  return true;
}

void FifoBuffer::Close() {
  MutexLock lock(mu_);
  closed_ = true;
  consumer_cv_.NotifyAll();
}

storage::PagePtr FifoBuffer::Next() {
  MutexLock lock(mu_);
  while (queue_.empty() && !closed_) consumer_cv_.Wait(mu_);
  if (queue_.empty()) return nullptr;
  storage::PagePtr page = std::move(queue_.front());
  queue_.pop_front();
  bytes_ -= storage::kPageSize;
  producer_cv_.NotifyOne();
  return page;
}

void FifoBuffer::CancelReader() {
  MutexLock lock(mu_);
  cancelled_ = true;
  queue_.clear();
  bytes_ = 0;
  producer_cv_.NotifyAll();
}

bool FifoBuffer::Abandoned() const {
  MutexLock lock(mu_);
  return cancelled_;
}

size_t FifoBuffer::buffered_bytes() const {
  MutexLock lock(mu_);
  return bytes_;
}

bool FifoBuffer::NothingEmitted() const {
  MutexLock lock(mu_);
  return !emitted_ && !closed_;
}

}  // namespace sdw::qpipe
