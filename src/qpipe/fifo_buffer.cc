#include "qpipe/fifo_buffer.h"

namespace sdw::qpipe {

bool FifoBuffer::Put(storage::PagePtr page) {
  std::unique_lock<std::mutex> lock(mu_);
  SDW_CHECK_MSG(!closed_, "Put after Close on FifoBuffer");
  producer_cv_.wait(lock, [&] {
    const bool full =
        max_bytes_ > 0 && bytes_ + storage::kPageSize > max_bytes_;
    return !full || cancelled_;
  });
  if (cancelled_) return false;
  emitted_ = true;
  queue_.push_back(std::move(page));
  bytes_ += storage::kPageSize;
  consumer_cv_.notify_one();
  return true;
}

void FifoBuffer::Close() {
  std::unique_lock<std::mutex> lock(mu_);
  closed_ = true;
  consumer_cv_.notify_all();
}

storage::PagePtr FifoBuffer::Next() {
  std::unique_lock<std::mutex> lock(mu_);
  consumer_cv_.wait(lock, [&] { return !queue_.empty() || closed_; });
  if (queue_.empty()) return nullptr;
  storage::PagePtr page = std::move(queue_.front());
  queue_.pop_front();
  bytes_ -= storage::kPageSize;
  producer_cv_.notify_one();
  return page;
}

void FifoBuffer::CancelReader() {
  std::unique_lock<std::mutex> lock(mu_);
  cancelled_ = true;
  queue_.clear();
  bytes_ = 0;
  producer_cv_.notify_all();
}

bool FifoBuffer::Abandoned() const {
  std::unique_lock<std::mutex> lock(mu_);
  return cancelled_;
}

size_t FifoBuffer::buffered_bytes() const {
  std::unique_lock<std::mutex> lock(mu_);
  return bytes_;
}

bool FifoBuffer::NothingEmitted() const {
  std::unique_lock<std::mutex> lock(mu_);
  return !emitted_ && !closed_;
}

}  // namespace sdw::qpipe
