// Per-stage registry of in-flight host packets for Simultaneous Pipelining.
//
// A stage registers each dispatched packet's (sub-plan signature → exchange).
// When a new packet with an identical signature arrives inside the host's
// window of opportunity, the registry attaches it as a satellite: the new
// packet is never executed and its parent reads the host's results instead
// (paper §2.2-2.3).

#ifndef SDW_QPIPE_SP_REGISTRY_H_
#define SDW_QPIPE_SP_REGISTRY_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "qpipe/exchange.h"

namespace sdw::qpipe {

/// Thread-safe signature → host-exchange registry.
class SpRegistry {
 public:
  /// Registers a host before its packet is dispatched.
  void Register(const std::string& signature, std::shared_ptr<Exchange> ex);

  /// Removes a host (after its packet completes).
  void Unregister(const std::string& signature, const Exchange* ex);

  /// Attempts to attach a satellite to any registered host with this
  /// signature whose WoP is still open. Returns the satellite's reader, or
  /// nullptr when no sharing is possible.
  std::unique_ptr<core::PageSource> TryAttach(const std::string& signature);

  /// Number of currently registered hosts (diagnostics).
  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::vector<std::shared_ptr<Exchange>>>
      hosts_;
};

}  // namespace sdw::qpipe

#endif  // SDW_QPIPE_SP_REGISTRY_H_
