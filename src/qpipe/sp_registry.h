// Per-stage registry of in-flight host packets for Simultaneous Pipelining.
//
// A stage registers each dispatched packet's (sub-plan signature → exchange).
// When a new packet with an identical signature arrives inside the host's
// window of opportunity, the registry attaches it as a satellite: the new
// packet is never executed and its parent reads the host's results instead
// (paper §2.2-2.3).
//
// Lifecycle tracking: a host may optionally be registered together with its
// owning query's lifecycle, and satellites attach with theirs. The registry
// then knows every consumer of the shared work, which is what makes host
// cancellation safe: cancelling the host's query must NOT kill the shared
// packet while satellites still depend on it — the host merely detaches,
// and the work is retired early only once AllConsumersDetached() (see the
// CJOIN stage's cancel path).

#ifndef SDW_QPIPE_SP_REGISTRY_H_
#define SDW_QPIPE_SP_REGISTRY_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "core/query_ticket.h"
#include "qpipe/exchange.h"

namespace sdw::qpipe {

/// Thread-safe signature → host-exchange registry.
class SpRegistry {
 public:
  /// Registers a host before its packet is dispatched. `consumer` is the
  /// owning query's lifecycle (may be null for stages that do not track
  /// consumers).
  void Register(const std::string& signature, std::shared_ptr<Exchange> ex,
                std::shared_ptr<core::QueryLifecycle> consumer = nullptr);

  /// Removes a host (after its packet completes).
  void Unregister(const std::string& signature, const Exchange* ex);

  /// Atomically removes a host whose packet stopped early and completes
  /// every recorded consumer with `why`. The removal and the consumer
  /// snapshot happen under one lock acquisition, so a satellite that
  /// attaches concurrently either lands before (and is failed with the
  /// rest) or finds no host — it can never attach to an aborted producer
  /// and drain the truncated stream as success.
  void UnregisterAborted(const std::string& signature, const Exchange* ex,
                         const Status& why);

  /// Attempts to attach a satellite to any registered host with this
  /// signature whose WoP is still open. Returns the satellite's reader, or
  /// nullptr when no sharing is possible. `consumer` (optional) is recorded
  /// against the matched host for AllConsumersDetached.
  std::unique_ptr<core::PageSource> TryAttach(
      const std::string& signature,
      const std::shared_ptr<core::QueryLifecycle>& consumer = nullptr);

  /// Completes every lifecycle recorded against this host with `why`
  /// (first-wins: consumers that already finished are untouched). Used when
  /// shared work fails or is rejected — the host's owner AND every satellite
  /// must see the error instead of draining a truncated stream as success.
  void FinishConsumers(const std::string& signature, const Exchange* ex,
                       const Status& why);

  /// Effective scheduling priority of a shared packet: the max submit-time
  /// priority over every consumer recorded against this host (owner +
  /// satellites), or `fallback` when the host is unknown or untracked.
  /// QPipe's stage run queues call this at pop time, which is what makes a
  /// satellite attaching at high priority boost the already-queued host
  /// (priority inheritance across shared work).
  int MaxConsumerPriority(const std::string& signature, const Exchange* ex,
                          int fallback) const;

  /// True when every lifecycle recorded against this host has detached
  /// (cancelled or completed) — the shared work no longer has a live
  /// consumer and may be retired early. False for unknown hosts or hosts
  /// registered without lifecycle tracking.
  bool AllConsumersDetached(const std::string& signature,
                            const Exchange* ex) const;

  /// Number of currently registered hosts (diagnostics).
  size_t size() const;

 private:
  struct Host {
    std::shared_ptr<Exchange> ex;
    /// Every query consuming this host's output (owner + satellites);
    /// empty when the host was registered without lifecycle tracking.
    std::vector<std::shared_ptr<core::QueryLifecycle>> consumers;
  };

  // TryAttach calls Exchange::TryAttachSatellite (tee/channel locks) under
  // mu_, and ThreadPool's dynamic_priority provider calls into the registry
  // while holding the pool lock — hence kThreadPool < kSpRegistry < kTeeSink.
  mutable Mutex mu_{lock_rank::Rank::kSpRegistry};
  std::unordered_map<std::string, std::vector<Host>> hosts_ GUARDED_BY(mu_);
};

}  // namespace sdw::qpipe

#endif  // SDW_QPIPE_SP_REGISTRY_H_
