#include "qpipe/circular_scan.h"

#include <algorithm>

#include "common/breakdown.h"
#include "qpipe/exchange.h"

namespace sdw::qpipe {

namespace {

/// Source over an empty table: immediate end of stream.
class EmptyPageSource : public core::PageSource {
 public:
  storage::PagePtr Next() override { return nullptr; }
  void CancelReader() override {}
};

}  // namespace

// Pull-mode consumer: one full cycle (num_pages pages) from the shared SPL.
class CircularScanService::CycleLimitedReader : public core::PageSource {
 public:
  CycleLimitedReader(CircularScanService* service,
                     std::unique_ptr<core::SharedPagesList::Reader> reader,
                     uint64_t pages)
      : service_(service), reader_(std::move(reader)), remaining_(pages) {}

  ~CycleLimitedReader() override { CancelReader(); }

  storage::PagePtr Next() override {
    if (remaining_ == 0) {
      CancelReader();
      return nullptr;
    }
    storage::PagePtr page = reader_->Next();
    if (page == nullptr) {
      CancelReader();
      return nullptr;
    }
    --remaining_;
    if (remaining_ == 0) CancelReader();
    return page;
  }

  void CancelReader() override {
    if (done_) return;
    done_ = true;
    // Drop the service's consumer count BEFORE detaching from the SPL:
    // in the reverse order the service sees work pending while the SPL has
    // no readers, so its Put degenerates to a non-blocking drop and the
    // scan free-runs the cursor (wasted page fetches) until this thread
    // gets the service lock.
    {
      std::unique_lock<std::mutex> lock(service_->mu_);
      SDW_DCHECK(service_->pull_consumers_ > 0);
      --service_->pull_consumers_;
    }
    reader_->CancelReader();
  }

 private:
  CircularScanService* service_;
  std::unique_ptr<core::SharedPagesList::Reader> reader_;
  uint64_t remaining_;
  bool done_ = false;
};

CircularScanService::CircularScanService(const storage::Table* table,
                                         storage::BufferPool* pool,
                                         core::CommModel comm,
                                         size_t channel_bytes)
    : table_(table),
      pool_(pool),
      comm_(comm),
      channel_bytes_(channel_bytes),
      cursor_(table, pool) {
  if (comm_ == core::CommModel::kPull) {
    spl_ = std::make_shared<core::SharedPagesList>(channel_bytes_);
  }
  worker_ = std::thread([this] { Loop(); });
}

CircularScanService::~CircularScanService() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stopping_ = true;
  }
  wake_cv_.notify_all();
  worker_.join();
}

std::unique_ptr<core::PageSource> CircularScanService::Attach() {
  const uint64_t pages = table_->num_pages();
  if (pages == 0) return std::make_unique<EmptyPageSource>();

  if (comm_ == core::CommModel::kPull) {
    auto reader = spl_->AttachAtCurrent();
    SDW_CHECK(reader != nullptr);
    std::unique_ptr<core::PageSource> src;
    {
      std::unique_lock<std::mutex> lock(mu_);
      ++pull_consumers_;
      src = std::make_unique<CycleLimitedReader>(this, std::move(reader),
                                                 pages);
    }
    wake_cv_.notify_all();
    return src;
  }

  auto fifo = std::make_shared<FifoBuffer>(channel_bytes_);
  {
    std::unique_lock<std::mutex> lock(mu_);
    push_pending_.push_back({fifo, pages});
  }
  wake_cv_.notify_all();
  return std::make_unique<FifoReaderHolder>(std::move(fifo));
}

bool CircularScanService::HasWorkLocked() const {
  if (comm_ == core::CommModel::kPull) return pull_consumers_ > 0;
  return !push_active_.empty() || !push_pending_.empty();
}

void CircularScanService::Loop() {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_cv_.wait(lock, [&] { return stopping_ || HasWorkLocked(); });
      if (stopping_) return;
      if (comm_ == core::CommModel::kPush) {
        for (auto& c : push_pending_) push_active_.push_back(std::move(c));
        push_pending_.clear();
      }
    }

    // Fetch the next page (simulated I/O happens here, in the single
    // service thread — the shared sequential scan).
    const uint64_t position = cursor_.position();
    const storage::Page* raw;
    {
      ScopedComponentTimer t(Component::kScans);
      raw = cursor_.Next();
    }
    if (raw == nullptr) continue;
    storage::PagePtr page = table_->SharePage(position);
    pages_produced_.fetch_add(1, std::memory_order_relaxed);

    if (comm_ == core::CommModel::kPull) {
      // One Put serves every consumer: no per-consumer work at all.
      spl_->Put(std::move(page));
      continue;
    }

    // Push mode: clone the page into every consumer FIFO, sequentially in
    // this thread (the push-model forwarding cost).
    std::vector<PushConsumer> active;
    {
      std::unique_lock<std::mutex> lock(mu_);
      active.swap(push_active_);
    }
    std::vector<PushConsumer> still_active;
    still_active.reserve(active.size());
    for (auto& c : active) {
      if (!c.fifo->Put(storage::Page::Clone(*page))) continue;  // cancelled
      if (--c.remaining == 0) {
        c.fifo->Close();  // full cycle delivered
        continue;
      }
      still_active.push_back(std::move(c));
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      for (auto& c : still_active) push_active_.push_back(std::move(c));
    }
  }
}

CircularScanService* CircularScanMap::Get(const storage::Table* table) {
  std::unique_lock<std::mutex> lock(mu_);
  for (auto& [t, svc] : services_) {
    if (t == table) return svc.get();
  }
  services_.emplace_back(
      table, std::make_unique<CircularScanService>(table, pool_, comm_,
                                                   channel_bytes_));
  return services_.back().second.get();
}

}  // namespace sdw::qpipe
