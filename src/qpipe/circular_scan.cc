#include "qpipe/circular_scan.h"

#include <algorithm>

#include "common/breakdown.h"
#include "qpipe/exchange.h"

namespace sdw::qpipe {

namespace {

/// Source over an empty table: immediate end of stream.
class EmptyPageSource : public core::PageSource {
 public:
  storage::PagePtr Next() override { return nullptr; }
  void CancelReader() override {}
};

}  // namespace

// Pull-mode consumer: one full cycle (num_pages pages) from the shared SPL.
class CircularScanService::CycleLimitedReader : public core::PageSource {
 public:
  CycleLimitedReader(CircularScanService* service,
                     std::unique_ptr<core::SharedPagesList::Reader> reader,
                     uint64_t pages)
      : service_(service), reader_(std::move(reader)), remaining_(pages) {}

  ~CycleLimitedReader() override { CancelReader(); }

  storage::PagePtr Next() override {
    if (remaining_ == 0) {
      CancelReader();
      return nullptr;
    }
    storage::PagePtr page = reader_->Next();
    if (page == nullptr) {
      CancelReader();
      return nullptr;
    }
    --remaining_;
    if (remaining_ == 0) CancelReader();
    return page;
  }

  void CancelReader() override {
    if (done_) return;
    done_ = true;
    // Drop the service's consumer count BEFORE detaching from the SPL:
    // in the reverse order the service sees work pending while the SPL has
    // no readers, so its Put degenerates to a non-blocking drop and the
    // scan free-runs the cursor (wasted page fetches) until this thread
    // gets the service lock.
    {
      MutexLock lock(service_->mu_);
      SDW_DCHECK(service_->pull_consumers_ > 0);
      --service_->pull_consumers_;
    }
    reader_->CancelReader();
  }

 private:
  CircularScanService* service_;
  std::unique_ptr<core::SharedPagesList::Reader> reader_;
  uint64_t remaining_;
  bool done_ = false;
};

// Wraps a consumer's source with the service's fault epoch: a fault fired
// after this consumer attached poisons the stream, surfaced via status() so
// RunScan doesn't flush a truncated cycle as a complete result. Consumers
// that attach after the fault snapshot the newer epoch and stay clean.
class CircularScanService::FaultScopedSource : public core::PageSource {
 public:
  FaultScopedSource(CircularScanService* service,
                    std::unique_ptr<core::PageSource> inner,
                    uint64_t attach_seq)
      : service_(service), inner_(std::move(inner)), attach_seq_(attach_seq) {}

  storage::PagePtr Next() override {
    if (!status_.ok()) return nullptr;
    storage::PagePtr page = inner_->Next();
    Status fault = service_->FaultSince(attach_seq_);
    if (!fault.ok()) {
      status_ = std::move(fault);
      inner_->CancelReader();
      return nullptr;
    }
    return page;
  }

  void CancelReader() override { inner_->CancelReader(); }
  Status status() const override { return status_; }

 private:
  CircularScanService* service_;
  std::unique_ptr<core::PageSource> inner_;
  const uint64_t attach_seq_;
  Status status_;
};

CircularScanService::CircularScanService(const storage::Table* table,
                                         storage::BufferPool* pool,
                                         core::CommModel comm,
                                         size_t channel_bytes)
    : table_(table),
      pool_(pool),
      comm_(comm),
      channel_bytes_(channel_bytes),
      cursor_(table, pool) {
  if (comm_ == core::CommModel::kPull) {
    spl_ = std::make_shared<core::SharedPagesList>(channel_bytes_);
  }
  worker_ = std::thread([this] { Loop(); });
}

CircularScanService::~CircularScanService() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  wake_cv_.NotifyAll();
  worker_.join();
}

std::unique_ptr<core::PageSource> CircularScanService::Attach() {
  const uint64_t pages = table_->num_pages();
  if (pages == 0) return std::make_unique<EmptyPageSource>();

  std::unique_ptr<core::PageSource> src;
  uint64_t attach_seq;
  if (comm_ == core::CommModel::kPull) {
    auto reader = spl_->AttachAtCurrent();
    SDW_CHECK(reader != nullptr);
    {
      MutexLock lock(mu_);
      ++pull_consumers_;
      attach_seq = fault_seq_.load(std::memory_order_acquire);
      src = std::make_unique<CycleLimitedReader>(this, std::move(reader),
                                                 pages);
    }
  } else {
    auto fifo = std::make_shared<FifoBuffer>(channel_bytes_);
    {
      MutexLock lock(mu_);
      push_pending_.push_back({fifo, pages});
      attach_seq = fault_seq_.load(std::memory_order_acquire);
    }
    src = std::make_unique<FifoReaderHolder>(std::move(fifo));
  }
  wake_cv_.NotifyAll();
  return std::make_unique<FaultScopedSource>(this, std::move(src), attach_seq);
}

bool CircularScanService::HasWorkLocked() const {
  if (comm_ == core::CommModel::kPull) return pull_consumers_ > 0;
  return !push_active_.empty() || !push_pending_.empty();
}

void CircularScanService::Loop() {
  while (true) {
    {
      MutexLock lock(mu_);
      while (!stopping_ && !HasWorkLocked()) wake_cv_.Wait(mu_);
      if (stopping_) return;
      if (comm_ == core::CommModel::kPush) {
        for (auto& c : push_pending_) push_active_.push_back(std::move(c));
        push_pending_.clear();
      }
    }

    // Fetch the next page (simulated I/O happens here, in the single
    // service thread — the shared sequential scan). The cursor absorbs
    // transient errors with backoff; what surfaces here is terminal.
    const uint64_t position = cursor_.position();
    Result<const storage::Page*> fetched = [&] {
      ScopedComponentTimer t(Component::kScans);
      return cursor_.Next();
    }();
    if (!fetched.ok()) {
      RecordFault(position, fetched.status());
      continue;  // the cursor already skipped the page; keep serving
    }
    const storage::Page* raw = fetched.value();
    if (raw == nullptr) continue;
    storage::PagePtr page = table_->SharePage(position);
    pages_produced_.fetch_add(1, std::memory_order_relaxed);

    if (comm_ == core::CommModel::kPull) {
      // One Put serves every consumer: no per-consumer work at all.
      spl_->Put(std::move(page));
      continue;
    }

    // Push mode: clone the page into every consumer FIFO, sequentially in
    // this thread (the push-model forwarding cost).
    std::vector<PushConsumer> active;
    {
      MutexLock lock(mu_);
      active.swap(push_active_);
    }
    std::vector<PushConsumer> still_active;
    still_active.reserve(active.size());
    for (auto& c : active) {
      if (!c.fifo->Put(storage::Page::Clone(*page))) continue;  // cancelled
      if (--c.remaining == 0) {
        c.fifo->Close();  // full cycle delivered
        continue;
      }
      still_active.push_back(std::move(c));
    }
    {
      MutexLock lock(mu_);
      for (auto& c : still_active) push_active_.push_back(std::move(c));
    }
  }
}

void CircularScanService::RecordFault(uint64_t page_idx, const Status& why) {
  pages_skipped_.fetch_add(1, std::memory_order_relaxed);
  MutexLock lock(mu_);
  last_fault_ =
      Status(why.code(), "circular scan: page " + std::to_string(page_idx) +
                             " of table '" + table_->name() +
                             "' unreadable: " + why.message());
  fault_seq_.fetch_add(1, std::memory_order_release);
}

Status CircularScanService::FaultSince(uint64_t attach_seq) {
  if (fault_seq_.load(std::memory_order_acquire) == attach_seq) {
    return Status::Ok();
  }
  MutexLock lock(mu_);
  return last_fault_;
}

CircularScanService* CircularScanMap::Get(const storage::Table* table) {
  MutexLock lock(mu_);
  for (auto& [t, svc] : services_) {
    if (t == table) return svc.get();
  }
  services_.emplace_back(
      table, std::make_unique<CircularScanService>(table, pool_, comm_,
                                                   channel_bytes_));
  return services_.back().second.get();
}

}  // namespace sdw::qpipe
