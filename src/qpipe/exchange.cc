#include "qpipe/exchange.h"

namespace sdw::qpipe {

// ---------------------------------------------------------------- SplExchange

class SplExchange::ReaderHolder : public core::PageSource {
 public:
  ReaderHolder(std::shared_ptr<core::SharedPagesList> keepalive,
               std::unique_ptr<core::SharedPagesList::Reader> reader)
      : keepalive_(std::move(keepalive)), reader_(std::move(reader)) {}

  storage::PagePtr Next() override { return reader_->Next(); }
  void CancelReader() override { reader_->CancelReader(); }

 private:
  std::shared_ptr<core::SharedPagesList> keepalive_;
  std::unique_ptr<core::SharedPagesList::Reader> reader_;
};

std::unique_ptr<core::PageSource> SplExchange::OpenPrimaryReader() {
  auto reader = spl_->TryAttachFromStart();
  SDW_CHECK_MSG(reader != nullptr,
                "primary reader must attach before production");
  return std::make_unique<ReaderHolder>(spl_, std::move(reader));
}

std::unique_ptr<core::PageSource> SplExchange::TryAttachSatellite() {
  auto reader = spl_->TryAttachFromStart();
  if (reader == nullptr) return nullptr;  // WoP closed
  return std::make_unique<ReaderHolder>(spl_, std::move(reader));
}

// -------------------------------------------------------------------- TeeSink

bool TeeSink::Put(storage::PagePtr page) {
  // Snapshot satellites under the lock; the copying itself happens in the
  // producer thread, serially per satellite — the push-model cost.
  std::vector<std::shared_ptr<FifoBuffer>> sats;
  {
    MutexLock lock(mu_);
    emitted_ = true;
    sats = satellites_;
  }
  size_t delivered = 0;
  for (auto& s : sats) {
    if (s->Put(storage::Page::Clone(*page))) {
      ++delivered;
    } else {
      // Satellite cancelled; drop it so we stop copying for it.
      MutexLock lock(mu_);
      std::erase(satellites_, s);
    }
  }
  // The producer must keep running while ANY consumer remains: a cancelled
  // primary (host detached) with live satellites is not end-of-stream.
  if (primary_->Put(std::move(page))) ++delivered;
  return delivered > 0;
}

void TeeSink::Close() {
  std::vector<std::shared_ptr<FifoBuffer>> sats;
  {
    MutexLock lock(mu_);
    closed_ = true;
    sats = satellites_;
  }
  for (auto& s : sats) s->Close();
  primary_->Close();
}

bool TeeSink::Abandoned() const {
  MutexLock lock(mu_);
  if (!primary_->Abandoned()) return false;
  for (const auto& s : satellites_) {
    if (!s->Abandoned()) return false;
  }
  return true;
}

bool TeeSink::TryAddSatellite(std::shared_ptr<FifoBuffer> satellite) {
  MutexLock lock(mu_);
  if (emitted_ || closed_) return false;
  satellites_.push_back(std::move(satellite));
  return true;
}

// --------------------------------------------------------------- FifoExchange

std::unique_ptr<core::PageSource> FifoExchange::OpenPrimaryReader() {
  return std::make_unique<FifoReaderHolder>(primary_);
}

std::unique_ptr<core::PageSource> FifoExchange::TryAttachSatellite() {
  auto fifo = std::make_shared<FifoBuffer>(channel_bytes_);
  if (!tee_->TryAddSatellite(fifo)) return nullptr;
  return std::make_unique<FifoReaderHolder>(std::move(fifo));
}

// -------------------------------------------------------------------- factory

std::unique_ptr<Exchange> MakeExchange(core::CommModel comm,
                                       size_t channel_bytes) {
  if (comm == core::CommModel::kPull) {
    return std::make_unique<SplExchange>(channel_bytes);
  }
  return std::make_unique<FifoExchange>(channel_bytes);
}

}  // namespace sdw::qpipe
