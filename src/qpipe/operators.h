// Query-centric relational operators. Each Run* function is the body of one
// QPipe packet: it consumes page streams, produces a page stream, and charges
// its CPU time to the paper's breakdown buckets (Hashing / Joins /
// Aggregation / Scans / Misc) at page granularity.

#ifndef SDW_QPIPE_OPERATORS_H_
#define SDW_QPIPE_OPERATORS_H_

#include <memory>

#include "core/page_channel.h"
#include "query/plan.h"
#include "storage/buffer_pool.h"

namespace sdw::qpipe {

/// Streams tuples into pages and forwards full pages to a sink.
class PageWriter {
 public:
  PageWriter(core::PageSink* sink, uint32_t tuple_size)
      : sink_(sink), tuple_size_(tuple_size) {}

  /// Space for one output tuple; nullptr once the sink reports no consumers
  /// (the producer should stop).
  std::byte* AppendTuple();

  /// Emits the final partial page. Safe to call multiple times.
  void Flush();

  bool ok() const { return ok_; }

 private:
  core::PageSink* sink_;
  const uint32_t tuple_size_;
  storage::PagePtr page_;
  bool ok_ = true;
};

// Each operator returns OK when it ran to completion, kCancelled when it
// stopped early because its consumers vanished (out->Abandoned() or a failed
// Put), and any other code when a fault reached it — a storage read error
// from its own cursor or a failure reported by an upstream source's
// status(). The engine uses the distinction to fail satellites that would
// otherwise drain a truncated stream as a complete result, and to propagate
// taxonomy statuses (kUnavailable/kDataLoss) to the owning tickets.

/// Table scan with selection and projection. When `raw_pages` is non-null the
/// scan consumes the shared circular-scan stream; otherwise it runs its own
/// cursor through the buffer pool (query-centric scan).
Status RunScan(const query::PlanNode& node, core::PageSource* raw_pages,
               storage::BufferPool* pool, core::PageSink* out);

/// Hash join: drains `build` into a hash table, then probes with `probe`.
Status RunHashJoin(const query::PlanNode& node, core::PageSource* probe,
                   core::PageSource* build, core::PageSink* out);

/// Hash aggregation with the paper workloads' aggregate kinds.
Status RunAggregate(const query::PlanNode& node, core::PageSource* in,
                    core::PageSink* out);

/// Full sort (materializing); used for ORDER BY.
Status RunSort(const query::PlanNode& node, core::PageSource* in,
               core::PageSink* out);

/// Reads a numeric column (int or double) as double.
double NumericValue(const storage::Schema& schema, const std::byte* tuple,
                    size_t col);

}  // namespace sdw::qpipe

#endif  // SDW_QPIPE_OPERATORS_H_
