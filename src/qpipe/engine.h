// The QPipe staged execution engine (paper §2.3).
//
// Each relational operator kind is a stage with its own worker pool; a query
// plan becomes one packet per operator, dispatched to the stages and
// communicating through Exchanges (FIFO push or SPL pull). Stages detect
// packets with identical sub-plan signatures and attach them as satellites of
// the in-flight host (Simultaneous Pipelining).
//
// Submission is batched: all packets of a batch are wired before any packet
// runs, matching the paper's experiments where concurrent queries are
// "submitted at the same time" and therefore arrive inside every WoP.
// Single-query Submit is the degenerate batch; late arrivals attach only
// while the host's window is still open.

#ifndef SDW_QPIPE_ENGINE_H_
#define SDW_QPIPE_ENGINE_H_

#include <array>
#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "common/mutex.h"
#include "common/thread_pool.h"
#include "core/scheduler.h"
#include "qpipe/circular_scan.h"
#include "qpipe/exchange.h"
#include "qpipe/packet.h"
#include "qpipe/sp_registry.h"
#include "query/plan.h"
#include "storage/buffer_pool.h"
#include "storage/catalog.h"

namespace sdw::qpipe {

/// Engine configuration; the five paper configurations map onto these flags
/// (see core::EngineConfig).
struct QpipeOptions {
  /// SP communication model: push/FIFO or pull/SPL (paper §4).
  core::CommModel comm = core::CommModel::kPull;
  /// Scan-stage sharing: circular scans + identical-scan SP ("CS").
  bool sp_scan = false;
  /// Join-stage SP (identical join sub-plans).
  bool sp_join = false;
  /// Aggregation-stage SP (off in the paper's experiments).
  bool sp_agg = false;
  /// Sort-stage SP (off in the paper's experiments).
  bool sp_sort = false;
  /// Byte bound of every FIFO / SPL (paper uses 256 KB).
  size_t channel_bytes = 256 * 1024;
  /// Scheduler governing the stage run queues (priority/aging policy) and
  /// deadline enforcement (timer wheel). When null the engine owns a
  /// default-configured one.
  core::Scheduler* scheduler = nullptr;
  /// Caps every stage pool's worker count (0 = unlimited, the seed
  /// behavior). A cap makes the priority run queue observable — freed
  /// workers pop the highest-priority packet — but see the
  /// ThreadPoolOptions deadlock caveat: same-stage packets that feed each
  /// other (nested joins) can deadlock under a cap, so cap only for
  /// independent-packet workloads (scan stages, scheduling experiments).
  size_t stage_max_workers = 0;
};

/// SP sharing counters (the paper reports these per experiment, e.g. the
/// "1st/2nd/3rd hash-join" share counts of Figure 15).
struct SpCounters {
  uint64_t scan_shares = 0;
  uint64_t agg_shares = 0;
  uint64_t sort_shares = 0;
  std::array<uint64_t, 8> join_shares_by_depth{};  // [0] = first hash join

  uint64_t join_shares_total() const {
    uint64_t n = 0;
    for (uint64_t v : join_shares_by_depth) n += v;
    return n;
  }
};

/// The staged engine.
class QpipeEngine {
 public:
  QpipeEngine(const storage::Catalog* catalog, storage::BufferPool* pool,
              QpipeOptions options);
  ~QpipeEngine();

  SDW_DISALLOW_COPY(QpipeEngine);

  /// Submits a batch: wires packets for all queries (detecting SP sharing
  /// within the batch and against in-flight queries), then dispatches.
  /// Queries whose deadline already expired are rejected before wiring
  /// (their handle's lifecycle completes kDeadlineExceeded immediately).
  std::vector<QueryHandle> SubmitBatch(
      const std::vector<query::StarQuery>& queries,
      const core::SubmitOptions& opts = core::SubmitOptions());

  /// The general batch shape: each query carries its own options, so one
  /// arrival batch can mix priorities and deadlines (the scheduler orders
  /// dispatch and admission within it).
  std::vector<QueryHandle> SubmitRequests(
      const std::vector<core::SubmitRequest>& requests);

  /// Single-query convenience wrapper.
  QueryHandle Submit(const query::StarQuery& q,
                     const core::SubmitOptions& opts = core::SubmitOptions());

  /// Blocks until every submitted query has completed.
  void WaitAll();

  /// Snapshot of sharing counters.
  SpCounters sp_counters() const;
  /// Zeroes sharing counters.
  void ResetSpCounters();

  const QpipeOptions& options() const { return options_; }
  const storage::Catalog* catalog() const { return catalog_; }
  storage::BufferPool* buffer_pool() const { return pool_; }
  /// The scheduler in effect (injected or engine-owned).
  core::Scheduler* scheduler() const { return sched_; }

  /// Hook used by the CJOIN integration (core::CjoinStage): when set, join
  /// sub-plans are evaluated by the delegate (the GQP) instead of
  /// query-centric join packets. Must be installed before any submission.
  /// The delegate returns the reader of the join sub-plan's output and
  /// appends its dispatch steps to `deferred` (run after wiring completes).
  using JoinDelegate = std::function<std::unique_ptr<core::PageSource>(
      QueryContext* ctx, const query::PlanNode* join_root,
      std::vector<std::function<void()>>* deferred)>;
  void set_join_delegate(JoinDelegate delegate) {
    join_delegate_ = std::move(delegate);
  }

  /// Companion hook for shared aggregation: when set, an aggregate node
  /// sitting directly on a join sub-plan is evaluated inside the CJOIN
  /// pipeline (same-shape queries fold onto one shared aggregation group)
  /// and the delegate returns the reader of the aggregate's output. Same
  /// contract as JoinDelegate; checked before it during plan wiring.
  using AggDelegate = JoinDelegate;
  void set_agg_delegate(AggDelegate delegate) {
    agg_delegate_ = std::move(delegate);
  }

  /// Invoked once per SubmitBatch after all deferred dispatches ran; the
  /// CJOIN stage uses it to hand its staged submissions to the pipeline as
  /// one admission batch.
  void set_batch_flush_hook(std::function<void()> hook) {
    batch_flush_ = std::move(hook);
  }

 private:
  struct Stage {
    Stage(const std::string& name, const ThreadPoolOptions& opts)
        : pool(name, opts) {}
    // Declaration order is load-bearing: packet workers touch the registry
    // (Unregister after closing their sink) past the point the submitting
    // query's results drain, so ~Stage must join the pool BEFORE the
    // registry dies — members are destroyed in reverse declaration order.
    // (Caught by the TSAN CI job.)
    SpRegistry registry;
    ThreadPool pool;
  };

  Stage* StageFor(query::PlanNode::Kind kind);
  bool SpEnabledFor(query::PlanNode::Kind kind) const;
  void RecordShare(const query::PlanNode* node);
  static int JoinDepth(const query::PlanNode* node);

  /// A registered host exchange on the path from a packet to its query's
  /// root. When a packet aborts, consumers of every ancestor host must be
  /// failed too: their streams are truncated through the ordinary EOS the
  /// intermediate operators emit.
  struct HostRef {
    Stage* stage;
    const query::PlanNode* node;
    std::shared_ptr<Exchange> ex;
  };

  /// Builds the producer pipeline for `node`, returning the reader of its
  /// output. Dispatch closures are appended to `deferred`; `host_path`
  /// carries the registered hosts above `node` (maintained across the
  /// recursion; each packet snapshots its ancestors for the abort path).
  std::unique_ptr<core::PageSource> BuildProducer(
      const QueryHandle& ctx, const query::PlanNode* node,
      std::vector<std::function<void()>>* deferred,
      std::vector<HostRef>* host_path);

  /// Runs the operator: OK on completion, kCancelled when its consumers
  /// vanished, any other code for a surfaced fault (see operators.h).
  Status RunPacket(const query::PlanNode* node, Exchange* ex,
                   const std::vector<std::shared_ptr<core::PageSource>>& inputs);

  /// Sink task: drains the query's root reader into its result set,
  /// honoring cancellation, deadline and row_limit, and completes the
  /// lifecycle (exactly once, whatever happened upstream).
  void DrainResult(const QueryHandle& ctx, core::PageSource* reader);

  const storage::Catalog* catalog_;
  storage::BufferPool* pool_;
  const QpipeOptions options_;

  // Owned fallback when QpipeOptions::scheduler is null; sched_ is the one
  // actually used. Declared before the stages so the timer wheel outlives
  // every queue it can fire into.
  std::unique_ptr<core::Scheduler> owned_scheduler_;
  core::Scheduler* sched_;

  std::unique_ptr<CircularScanMap> scan_services_;
  std::unique_ptr<Stage> scan_stage_;
  std::unique_ptr<Stage> join_stage_;
  std::unique_ptr<Stage> agg_stage_;
  std::unique_ptr<Stage> sort_stage_;
  std::unique_ptr<ThreadPool> sink_pool_;

  JoinDelegate join_delegate_;
  AggDelegate agg_delegate_;
  std::function<void()> batch_flush_;

  std::atomic<uint64_t> next_qid_{1};

  // Leaf-like in practice (never wraps another acquisition) but ranked as
  // the engine layer so a future nesting under it is caught, not invented.
  mutable Mutex mu_{lock_rank::Rank::kEngine};
  std::vector<QueryHandle> active_ GUARDED_BY(mu_);
  SpCounters counters_ GUARDED_BY(mu_);
};

}  // namespace sdw::qpipe

#endif  // SDW_QPIPE_ENGINE_H_
