#include "qpipe/operators.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/breakdown.h"
#include "qpipe/hash_table.h"
#include "query/agg_ops.h"
#include "storage/scan.h"

namespace sdw::qpipe {

namespace {

/// Precomputed per-column byte moves from a source schema to an output
/// schema. `src_col` lets scans over PAX base pages read the source column's
/// minipage directly; channel pages between operators stay row-major and use
/// `src_off` against a tuple base pointer.
struct ColumnMove {
  size_t src_col;
  uint32_t src_off;
  uint32_t dst_off;
  uint32_t len;
};

std::vector<ColumnMove> PlanMoves(const storage::Schema& src,
                                  const std::vector<size_t>& src_cols,
                                  const storage::Schema& dst,
                                  size_t dst_start) {
  std::vector<ColumnMove> moves;
  moves.reserve(src_cols.size());
  for (size_t i = 0; i < src_cols.size(); ++i) {
    const size_t s = src_cols[i];
    const size_t d = dst_start + i;
    moves.push_back({s, src.offset(s), dst.offset(d), src.column(s).width()});
  }
  return moves;
}

void ApplyMoves(const std::vector<ColumnMove>& moves, const std::byte* src,
                std::byte* dst) {
  for (const auto& m : moves) {
    std::memcpy(dst + m.dst_off, src + m.src_off, m.len);
  }
}

}  // namespace

std::byte* PageWriter::AppendTuple() {
  if (!ok_) return nullptr;
  if (page_ == nullptr) page_ = storage::Page::Make(tuple_size_);
  std::byte* t = page_->AppendTuple();
  if (t != nullptr) return t;
  // Page full: emit and retry on a fresh page.
  if (!sink_->Put(std::move(page_))) {
    ok_ = false;
    return nullptr;
  }
  page_ = storage::Page::Make(tuple_size_);
  return page_->AppendTuple();
}

void PageWriter::Flush() {
  if (!ok_ || page_ == nullptr || page_->empty()) return;
  if (!sink_->Put(std::move(page_))) ok_ = false;
  page_ = nullptr;
}

double NumericValue(const storage::Schema& schema, const std::byte* tuple,
                    size_t col) {
  return query::AggNumericValue(schema, tuple, col);
}

// ------------------------------------------------------------------- RunScan

Status RunScan(const query::PlanNode& node, core::PageSource* raw_pages,
               storage::BufferPool* pool, core::PageSink* out) {
  const storage::Schema& base = node.table->schema();
  const query::Predicate::Bound pred = node.pred.Bind(base);
  const auto moves = PlanMoves(base, node.scan_proj, node.out_schema, 0);
  PageWriter writer(out, node.out_schema.tuple_size());

  auto process_page = [&](const storage::Page& page) {
    ScopedComponentTimer t(Component::kScans);
    const uint32_t n = page.tuple_count();
    if (page.columnar()) {
      // PAX base page: evaluate and project per minipage field — only the
      // referenced columns' cache lines are touched.
      for (uint32_t i = 0; i < n; ++i) {
        if (!pred.IsTrue() && !pred.EvalAt(base, page, i)) continue;
        std::byte* dst = writer.AppendTuple();
        if (dst == nullptr) return false;  // consumers gone
        for (const auto& m : moves) {
          std::memcpy(dst + m.dst_off, page.field(base, m.src_col, i), m.len);
        }
      }
      return true;
    }
    for (uint32_t i = 0; i < n; ++i) {
      const std::byte* tuple = page.tuple(i);
      if (!pred.IsTrue() && !pred.Eval(base, tuple)) continue;
      std::byte* dst = writer.AppendTuple();
      if (dst == nullptr) return false;  // consumers gone
      ApplyMoves(moves, tuple, dst);
    }
    return true;
  };

  // `out->Abandoned()` is the per-page cancellation check point: a fully
  // filtered scan may emit nothing for many pages, so a failed Put alone
  // would never tell it that every consumer cancelled.
  bool stopped = false;
  if (raw_pages != nullptr) {
    // Shared circular scan: consume one full cycle of raw pages.
    while (storage::PagePtr page = raw_pages->Next()) {
      if (out->Abandoned() || !process_page(*page)) {
        raw_pages->CancelReader();
        stopped = true;
        break;
      }
    }
    if (!stopped) {
      // nullptr is a clean cycle end only if the shared producer didn't hit
      // a fault after this consumer attached; a truncated stream must not be
      // flushed as a complete result.
      Status src = raw_pages->status();
      if (!src.ok()) return src;
    }
  } else {
    storage::TableScanCursor cursor(node.table, pool);
    for (;;) {
      Result<const storage::Page*> r = cursor.Next();
      if (!r.ok()) return r.status();
      const storage::Page* page = r.value();
      if (page == nullptr) break;
      if (out->Abandoned() || !process_page(*page)) {
        stopped = true;
        break;
      }
    }
  }
  writer.Flush();
  if (stopped || !writer.ok()) {
    return Status::Cancelled("scan consumers detached");
  }
  return Status::Ok();
}

// --------------------------------------------------------------- RunHashJoin

Status RunHashJoin(const query::PlanNode& node, core::PageSource* probe,
                   core::PageSource* build, core::PageSink* out) {
  const storage::Schema& probe_schema = node.child(0)->out_schema;
  const storage::Schema& build_schema = node.child(1)->out_schema;
  const auto payload_moves =
      PlanMoves(build_schema, node.build_payload, node.out_schema,
                probe_schema.num_columns());
  const uint32_t probe_width = probe_schema.tuple_size();
  const size_t probe_key = node.probe_key;
  const size_t build_key = node.build_key;

  // Build phase: materialize pages, hash keys, insert tuple pointers.
  std::vector<storage::PagePtr> build_pages;
  Int64HashTable ht;
  std::vector<std::pair<uint64_t, int64_t>> hashes;
  while (storage::PagePtr page = build->Next()) {
    if (out->Abandoned()) {
      // Consumers cancelled mid-build: stop consuming and release both
      // producers instead of building a table nobody will probe.
      build->CancelReader();
      probe->CancelReader();
      return Status::Cancelled("join consumers detached");
    }
    const uint32_t n = page->tuple_count();
    hashes.clear();
    {
      ScopedComponentTimer t(Component::kHashing);
      hashes.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        const int64_t key = build_schema.GetIntAny(page->tuple(i), build_key);
        hashes.emplace_back(HashKey(key), key);
      }
    }
    {
      ScopedComponentTimer t(Component::kJoins);
      for (uint32_t i = 0; i < n; ++i) {
        ht.Insert(hashes[i].first, hashes[i].second,
                  reinterpret_cast<uint64_t>(page->tuple(i)));
      }
    }
    build_pages.push_back(std::move(page));
  }
  if (Status src = build->status(); !src.ok()) {
    probe->CancelReader();
    return src;
  }
  {
    ScopedComponentTimer t(Component::kHashing);
    ht.Build();
  }

  // Probe phase.
  PageWriter writer(out, node.out_schema.tuple_size());
  std::vector<std::pair<uint32_t, const std::byte*>> matches;
  while (storage::PagePtr page = probe->Next()) {
    if (out->Abandoned()) {
      probe->CancelReader();
      build->CancelReader();
      return Status::Cancelled("join consumers detached");
    }
    const uint32_t n = page->tuple_count();
    matches.clear();
    {
      // Bucket walk + key equality: the paper's "Hashing" bucket.
      ScopedComponentTimer t(Component::kHashing);
      for (uint32_t i = 0; i < n; ++i) {
        const int64_t key = probe_schema.GetIntAny(page->tuple(i), probe_key);
        ht.ForEachMatch(HashKey(key), key, [&](uint64_t value) {
          matches.emplace_back(i, reinterpret_cast<const std::byte*>(value));
        });
      }
    }
    {
      // Output construction: the remaining join work.
      ScopedComponentTimer t(Component::kJoins);
      for (const auto& [i, build_tuple] : matches) {
        std::byte* dst = writer.AppendTuple();
        if (dst == nullptr) {
          probe->CancelReader();
          build->CancelReader();
          writer.Flush();
          return Status::Cancelled("join consumers detached");
        }
        std::memcpy(dst, page->tuple(i), probe_width);
        ApplyMoves(payload_moves, build_tuple, dst);
      }
    }
  }
  if (Status src = probe->status(); !src.ok()) return src;
  writer.Flush();
  if (!writer.ok()) return Status::Cancelled("join consumers detached");
  return Status::Ok();
}

// -------------------------------------------------------------- RunAggregate

// Accumulator semantics live in query/agg_ops.h, shared with the CJOIN
// shared-aggregation stage and its scalar reference so the differential
// tests compare one implementation against itself, not two copies.
using query::AggAcc;
using query::EmitAcc;
using query::UpdateAcc;

Status RunAggregate(const query::PlanNode& node, core::PageSource* in,
                    core::PageSink* out) {
  const storage::Schema& child = node.child(0)->out_schema;
  const storage::Schema& out_schema = node.out_schema;
  const size_t num_aggs = node.aggs.size();

  // Group key = raw bytes of the group columns, in group order; the output
  // schema places those columns first, so the key doubles as the tuple
  // prefix.
  size_t key_width = 0;
  for (size_t c : node.group_cols) key_width += child.column(c).width();

  std::unordered_map<std::string, std::vector<AggAcc>> groups;
  std::string key;
  key.reserve(key_width);

  while (storage::PagePtr page = in->Next()) {
    if (out->Abandoned()) {
      // Aggregation consumes its whole input before emitting anything, so
      // this is the only point where downstream cancellation can reach it.
      in->CancelReader();
      return Status::Cancelled("aggregate consumers detached");
    }
    ScopedComponentTimer t(Component::kAggregation);
    const uint32_t n = page->tuple_count();
    for (uint32_t i = 0; i < n; ++i) {
      const std::byte* tuple = page->tuple(i);
      key.clear();
      for (size_t c : node.group_cols) {
        key.append(reinterpret_cast<const char*>(tuple + child.offset(c)),
                   child.column(c).width());
      }
      auto [it, inserted] = groups.try_emplace(key);
      if (inserted) it->second.resize(num_aggs);
      for (size_t a = 0; a < num_aggs; ++a) {
        UpdateAcc(node.aggs[a], child, tuple, &it->second[a]);
      }
    }
  }

  if (Status src = in->status(); !src.ok()) return src;

  // A global aggregate (no GROUP BY) yields exactly one row even on empty
  // input, matching SQL semantics with zero-initialized accumulators.
  if (groups.empty() && node.group_cols.empty()) {
    groups.try_emplace(std::string()).first->second.resize(num_aggs);
  }

  PageWriter writer(out, out_schema.tuple_size());
  {
    ScopedComponentTimer t(Component::kAggregation);
    for (const auto& [group_key, accs] : groups) {
      std::byte* dst = writer.AppendTuple();
      if (dst == nullptr) break;
      std::memcpy(dst, group_key.data(), group_key.size());
      for (size_t a = 0; a < num_aggs; ++a) {
        EmitAcc(node.aggs[a], out_schema, dst, node.group_cols.size() + a,
                accs[a]);
      }
    }
  }
  writer.Flush();
  if (!writer.ok()) return Status::Cancelled("aggregate consumers detached");
  return Status::Ok();
}

// ------------------------------------------------------------------- RunSort

Status RunSort(const query::PlanNode& node, core::PageSource* in,
               core::PageSink* out) {
  const storage::Schema& schema = node.out_schema;

  std::vector<storage::PagePtr> pages;
  std::vector<const std::byte*> rows;
  while (storage::PagePtr page = in->Next()) {
    if (out->Abandoned()) {
      in->CancelReader();
      return Status::Cancelled("sort consumers detached");
    }
    const uint32_t n = page->tuple_count();
    for (uint32_t i = 0; i < n; ++i) rows.push_back(page->tuple(i));
    pages.push_back(std::move(page));
  }
  if (Status src = in->status(); !src.ok()) return src;

  {
    ScopedComponentTimer t(Component::kMisc);
    auto cmp = [&](const std::byte* a, const std::byte* b) {
      for (const auto& k : node.sort_keys) {
        int c = 0;
        switch (schema.column(k.col).type) {
          case storage::ColumnType::kInt32:
          case storage::ColumnType::kInt64: {
            const int64_t va = schema.GetIntAny(a, k.col);
            const int64_t vb = schema.GetIntAny(b, k.col);
            c = va < vb ? -1 : (va > vb ? 1 : 0);
            break;
          }
          case storage::ColumnType::kDouble: {
            const double va = schema.GetDouble(a, k.col);
            const double vb = schema.GetDouble(b, k.col);
            c = va < vb ? -1 : (va > vb ? 1 : 0);
            break;
          }
          case storage::ColumnType::kChar: {
            const auto va = schema.GetCharRaw(a, k.col);
            const auto vb = schema.GetCharRaw(b, k.col);
            c = va.compare(vb);
            c = c < 0 ? -1 : (c > 0 ? 1 : 0);
            break;
          }
        }
        if (c != 0) return k.ascending ? c < 0 : c > 0;
      }
      return false;
    };
    std::stable_sort(rows.begin(), rows.end(), cmp);
  }

  PageWriter writer(out, schema.tuple_size());
  for (const std::byte* row : rows) {
    std::byte* dst = writer.AppendTuple();
    if (dst == nullptr) break;
    std::memcpy(dst, row, schema.tuple_size());
  }
  writer.Flush();
  if (!writer.ok()) return Status::Cancelled("sort consumers detached");
  return Status::Ok();
}

}  // namespace sdw::qpipe
