// Bounded single-producer / single-consumer page FIFO — QPipe's original
// push-only exchange. During push-based SP the host's TeeSink copies every
// result page into each satellite's FifoBuffer sequentially, which is the
// serialization point the paper's Shared Pages Lists remove.

#ifndef SDW_QPIPE_FIFO_BUFFER_H_
#define SDW_QPIPE_FIFO_BUFFER_H_

#include <deque>

#include "common/macros.h"
#include "common/mutex.h"
#include "core/page_channel.h"

namespace sdw::qpipe {

/// SPSC bounded page queue implementing both channel endpoints.
class FifoBuffer : public core::PageSink, public core::PageSource {
 public:
  /// `max_bytes` bounds buffered pages (0 = unbounded).
  explicit FifoBuffer(size_t max_bytes = 256 * 1024)
      : max_bytes_(max_bytes) {}

  SDW_DISALLOW_COPY(FifoBuffer);

  // PageSink:
  bool Put(storage::PagePtr page) override;
  void Close() override;
  /// True once the (single) consumer cancelled.
  bool Abandoned() const override;

  // PageSource:
  storage::PagePtr Next() override;
  void CancelReader() override;

  size_t buffered_bytes() const;
  /// True while no page has ever been enqueued and not closed (step WoP).
  bool NothingEmitted() const;

 private:
  const size_t max_bytes_;

  // Channel endpoints are near-leaves: Put/Next never acquire another lock,
  // but emitters reach them under the query-output and tee locks.
  mutable Mutex mu_{lock_rank::Rank::kChannel};
  CondVar producer_cv_;
  CondVar consumer_cv_;
  std::deque<storage::PagePtr> queue_ GUARDED_BY(mu_);
  size_t bytes_ GUARDED_BY(mu_) = 0;
  bool emitted_ GUARDED_BY(mu_) = false;
  bool closed_ GUARDED_BY(mu_) = false;
  bool cancelled_ GUARDED_BY(mu_) = false;
};

}  // namespace sdw::qpipe

#endif  // SDW_QPIPE_FIFO_BUFFER_H_
