#include "qpipe/hash_table.h"

#include <algorithm>
#include <bit>

namespace sdw::qpipe {

void Int64HashTable::ProbeBatch(const int64_t* keys, size_t n,
                                uint64_t* out_values) const {
  SDW_DCHECK(built_);
  if (buckets_.empty()) {
    std::fill(out_values, out_values + n, kMissValue);
    return;
  }
  // Process keys in groups: one pass hashing + prefetching the bucket heads,
  // one pass loading heads + prefetching the first chain node, one pass
  // walking the (short, ~0.5 load factor) chains. The group size covers the
  // latency of the dependent loads without spilling the staging arrays out
  // of L1. Local restrict-qualified pointers let the compiler keep the
  // stage loops tight: the out_values stores cannot be proven non-aliasing
  // with the member arrays otherwise.
  constexpr size_t kGroup = 32;
  uint64_t hashes[kGroup];
  uint32_t heads[kGroup];
  const uint32_t* __restrict buckets = buckets_.data();
  const Entry* __restrict entries = entries_.data();
  const int64_t* __restrict in = keys;
  uint64_t* __restrict out = out_values;
  const uint64_t mask = mask_;
  for (size_t base = 0; base < n; base += kGroup) {
    const size_t g = std::min(kGroup, n - base);
    for (size_t j = 0; j < g; ++j) {
      hashes[j] = HashKey(in[base + j]);
      SDW_PREFETCH(&buckets[hashes[j] & mask]);
    }
    for (size_t j = 0; j < g; ++j) {
      heads[j] = buckets[hashes[j] & mask];
      if (heads[j] != kNone) SDW_PREFETCH(&entries[heads[j]]);
    }
    for (size_t j = 0; j < g; ++j) {
      uint64_t v = kMissValue;
      uint32_t i = heads[j];
      while (i != kNone) {
        const Entry& e = entries[i];
        if (e.hash == hashes[j] && e.key == in[base + j]) {
          v = e.value;
          break;
        }
        i = e.next;
      }
      out[base + j] = v;
    }
  }
}

void Int64HashTable::Build() {
  built_ = true;
  buckets_.clear();
  if (entries_.empty()) return;
  const size_t want = entries_.size() * 2;
  const size_t nbuckets = std::bit_ceil(want);
  buckets_.assign(nbuckets, kNone);
  mask_ = nbuckets - 1;
  for (uint32_t i = 0; i < entries_.size(); ++i) {
    const size_t b = entries_[i].hash & mask_;
    entries_[i].next = buckets_[b];
    buckets_[b] = i;
  }
}

}  // namespace sdw::qpipe
