#include "qpipe/hash_table.h"

#include <bit>

namespace sdw::qpipe {

void Int64HashTable::Build() {
  built_ = true;
  buckets_.clear();
  if (entries_.empty()) return;
  const size_t want = entries_.size() * 2;
  const size_t nbuckets = std::bit_ceil(want);
  buckets_.assign(nbuckets, kNone);
  mask_ = nbuckets - 1;
  for (uint32_t i = 0; i < entries_.size(); ++i) {
    const size_t b = entries_[i].hash & mask_;
    entries_[i].next = buckets_[b];
    buckets_[b] = i;
  }
}

}  // namespace sdw::qpipe
