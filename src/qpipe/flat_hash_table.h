// Flat open-addressing hash table over int64 join keys: the densified probe
// structure behind the CJOIN filters' columnar hot path.
//
// The chained Int64HashTable resolves a probe through two dependent loads
// (bucket head → entry node) at unrelated addresses; this table stores
// 16-byte {key, value} slots in ONE power-of-two array probed linearly, so a
// batched probe issues exactly one prefetchable cache line per key and hits
// resolve without pointer chasing. Linear probing keeps collision walks
// inside the same (or the next) cache line.
//
// Unlike the chained table there is no Build() freeze step: FindOrInsert is
// incremental, so CJOIN admission grows the table in place at every pause
// (replacing the std::unordered_map admission index AND the probe path for
// columnar batches). kMissValue is the one reserved value — it marks empty
// slots and is the ProbeBatch miss result, so it cannot be stored.

#ifndef SDW_QPIPE_FLAT_HASH_TABLE_H_
#define SDW_QPIPE_FLAT_HASH_TABLE_H_

#include <cstdint>
#include <vector>

#include "common/macros.h"
#include "qpipe/hash_table.h"

namespace sdw::qpipe {

/// Power-of-two, linear-probing open-addressing table: int64 key -> opaque
/// uint64 value (index or pointer). Values must not equal kMissValue.
class FlatInt64HashTable {
 public:
  /// ProbeBatch/Find result for absent keys; also the empty-slot marker.
  static constexpr uint64_t kMissValue = ~uint64_t{0};

  FlatInt64HashTable() { slots_.resize(kMinCapacity, Slot{0, kMissValue}); }

  size_t size() const { return size_; }
  size_t capacity() const { return slots_.size(); }

  /// Returns the value bound to `key`, inserting `value_if_new` first when
  /// absent; `*inserted` reports which. Grows at ~0.7 load, so steady
  /// re-admission of known keys never reallocates.
  uint64_t FindOrInsert(int64_t key, uint64_t value_if_new, bool* inserted) {
    SDW_DCHECK(value_if_new != kMissValue);
    if ((size_ + 1) * 10 >= slots_.size() * 7) Grow();
    const uint64_t mask = slots_.size() - 1;
    for (uint64_t p = HashKey(key) & mask;; p = (p + 1) & mask) {
      Slot& s = slots_[p];
      if (s.value == kMissValue) {
        s.key = key;
        s.value = value_if_new;
        ++size_;
        *inserted = true;
        return value_if_new;
      }
      if (s.key == key) {
        *inserted = false;
        return s.value;
      }
    }
  }

  /// Value bound to `key`, or kMissValue.
  uint64_t Find(int64_t key) const {
    const uint64_t mask = slots_.size() - 1;
    for (uint64_t p = HashKey(key) & mask;; p = (p + 1) & mask) {
      const Slot& s = slots_[p];
      if (s.value == kMissValue) return kMissValue;
      if (s.key == key) return s.value;
    }
  }

  /// Batch-at-a-time probe: hashes a group of keys, prefetches each key's
  /// home slot (one cache line — the dense stream the chained table cannot
  /// offer), then resolves. out_values[i] is the bound value or kMissValue.
  void ProbeBatch(const int64_t* keys, size_t n, uint64_t* out_values) const;

 private:
  struct Slot {
    int64_t key;
    uint64_t value;  // kMissValue = empty
  };
  static_assert(sizeof(Slot) == 16);

  static constexpr size_t kMinCapacity = 64;

  void Grow();

  std::vector<Slot> slots_;
  size_t size_ = 0;
};

}  // namespace sdw::qpipe

#endif  // SDW_QPIPE_FLAT_HASH_TABLE_H_
