#include "qpipe/flat_hash_table.h"

namespace sdw::qpipe {

void FlatInt64HashTable::Grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.size() * 2, Slot{0, kMissValue});
  const uint64_t mask = slots_.size() - 1;
  for (const Slot& s : old) {
    if (s.value == kMissValue) continue;
    uint64_t p = HashKey(s.key) & mask;
    while (slots_[p].value != kMissValue) p = (p + 1) & mask;
    slots_[p] = s;
  }
}

void FlatInt64HashTable::ProbeBatch(const int64_t* keys, size_t n,
                                    uint64_t* out_values) const {
  // Group staging mirrors Int64HashTable::ProbeBatch, but the flat layout
  // needs only ONE prefetch pass: a key's home slot usually holds its match
  // (or the empty slot proving a miss), so there is no second dependent
  // bucket→entry hop to hide.
  constexpr size_t kGroup = 32;
  uint64_t pos[kGroup];
  const Slot* __restrict slots = slots_.data();
  const uint64_t mask = slots_.size() - 1;

  for (size_t base = 0; base < n; base += kGroup) {
    const size_t g = (n - base) < kGroup ? (n - base) : kGroup;
    for (size_t j = 0; j < g; ++j) {
      pos[j] = HashKey(keys[base + j]) & mask;
      SDW_PREFETCH(&slots[pos[j]]);
    }
    for (size_t j = 0; j < g; ++j) {
      const int64_t key = keys[base + j];
      uint64_t p = pos[j];
      uint64_t v;
      for (;;) {
        const Slot& s = slots[p];
        if (s.value == kMissValue) {
          v = kMissValue;
          break;
        }
        if (s.key == key) {
          v = s.value;
          break;
        }
        p = (p + 1) & mask;
      }
      out_values[base + j] = v;
    }
  }
}

}  // namespace sdw::qpipe
