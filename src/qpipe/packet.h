// Query context: one submitted query's plan, result, and completion state.
// QPipe converts the plan into one packet per operator; packets are plain
// tasks dispatched to stage thread pools and communicate through Exchanges,
// so the "packet" itself needs no reified struct beyond the dispatch lambda —
// the QueryContext is the shared state they all reference.

#ifndef SDW_QPIPE_PACKET_H_
#define SDW_QPIPE_PACKET_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>

#include "query/plan.h"
#include "query/result.h"
#include "query/star_query.h"

namespace sdw::qpipe {

/// Shared state of one in-flight query.
struct QueryContext {
  uint64_t qid = 0;
  query::StarQuery query;
  std::unique_ptr<query::PlanNode> plan;
  query::ResultSet result;

  std::promise<void> promise;
  std::shared_future<void> done;

  int64_t submit_nanos = 0;
  int64_t finish_nanos = 0;

  /// End-to-end response time in seconds (valid after completion).
  double response_seconds() const {
    return static_cast<double>(finish_nanos - submit_nanos) * 1e-9;
  }

  /// True when SP satisfied the whole query from a host's results.
  std::atomic<bool> fully_shared{false};
};

using QueryHandle = std::shared_ptr<QueryContext>;

}  // namespace sdw::qpipe

#endif  // SDW_QPIPE_PACKET_H_
