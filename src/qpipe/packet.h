// Query context: one submitted query's plan and lifecycle. QPipe converts
// the plan into one packet per operator; packets are plain tasks dispatched
// to stage thread pools and communicate through Exchanges, so the "packet"
// itself needs no reified struct beyond the dispatch lambda — the
// QueryContext is the shared state they all reference.
//
// The client-visible outcome (status, result rows, metrics, cancellation)
// lives in the core::QueryLifecycle the context holds; clients observe it
// through a core::QueryTicket. Cancellation is consumer-driven: a cancel
// request cancels the query's root result reader, and producers observe the
// loss of their consumers at exchange boundaries (PageSink::Abandoned /
// failed Put) — which keeps SP hosts producing exactly as long as any
// satellite still reads them.

#ifndef SDW_QPIPE_PACKET_H_
#define SDW_QPIPE_PACKET_H_

#include <cstdint>
#include <memory>

#include "core/query_ticket.h"
#include "query/plan.h"
#include "query/star_query.h"

namespace sdw::qpipe {

/// Shared state of one in-flight query.
struct QueryContext {
  uint64_t qid = 0;
  query::StarQuery query;
  std::unique_ptr<query::PlanNode> plan;

  /// Client-visible lifecycle: status, result, metrics, cancel token.
  std::shared_ptr<core::QueryLifecycle> life;

  query::ResultSet& result() { return *life->mutable_result(); }
};

using QueryHandle = std::shared_ptr<QueryContext>;

}  // namespace sdw::qpipe

#endif  // SDW_QPIPE_PACKET_H_
