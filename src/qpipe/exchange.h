// Exchange: the output channel of a packet, abstracting over the two SP
// communication models. An exchange has one producing packet; its own parent
// opens the primary reader, and SP satellites attach while the operator's
// step window of opportunity is still open (nothing emitted yet):
//
//  * SplExchange (pull): one SharedPagesList; satellites become additional
//    readers of the same list — zero producer-side cost.
//  * FifoExchange (push): the producer writes through a TeeSink that deep-
//    copies every page into each satellite's private FIFO — the paper's
//    push-based SP with its serialization point.

#ifndef SDW_QPIPE_EXCHANGE_H_
#define SDW_QPIPE_EXCHANGE_H_

#include <memory>
#include <vector>

#include "common/breakdown.h"
#include "common/mutex.h"
#include "core/page_channel.h"
#include "core/shared_pages_list.h"
#include "qpipe/fifo_buffer.h"

namespace sdw::qpipe {

/// Output channel of one producing packet.
class Exchange {
 public:
  virtual ~Exchange() = default;

  /// Sink the producing packet writes to.
  virtual core::PageSink* sink() = 0;

  /// Opens the consumer endpoint for the packet's own parent. Must be called
  /// exactly once, before the producer is dispatched.
  virtual std::unique_ptr<core::PageSource> OpenPrimaryReader() = 0;

  /// Attaches an SP satellite under a step WoP: succeeds only while the
  /// producer has not emitted its first page. Thread-safe; returns nullptr
  /// when the window has closed.
  virtual std::unique_ptr<core::PageSource> TryAttachSatellite() = 0;
};

/// Factory honoring the configured communication model.
std::unique_ptr<Exchange> MakeExchange(core::CommModel comm,
                                       size_t channel_bytes);

/// PageSource over a FifoBuffer holding shared ownership of it.
class FifoReaderHolder : public core::PageSource {
 public:
  explicit FifoReaderHolder(std::shared_ptr<FifoBuffer> fifo)
      : fifo_(std::move(fifo)) {}

  storage::PagePtr Next() override { return fifo_->Next(); }
  void CancelReader() override { fifo_->CancelReader(); }

 private:
  std::shared_ptr<FifoBuffer> fifo_;
};

/// Pull-model exchange over a SharedPagesList.
class SplExchange : public Exchange {
 public:
  explicit SplExchange(size_t channel_bytes)
      : spl_(std::make_shared<core::SharedPagesList>(channel_bytes)) {}

  core::PageSink* sink() override { return spl_.get(); }
  std::unique_ptr<core::PageSource> OpenPrimaryReader() override;
  std::unique_ptr<core::PageSource> TryAttachSatellite() override;

  const core::SharedPagesList* spl() const { return spl_.get(); }

 private:
  // Reader wrapper keeping the list alive.
  class ReaderHolder;

  std::shared_ptr<core::SharedPagesList> spl_;
};

/// Push-model producer sink forwarding to satellites by deep copy.
class TeeSink : public core::PageSink {
 public:
  explicit TeeSink(std::shared_ptr<FifoBuffer> primary)
      : primary_(std::move(primary)) {}

  bool Put(storage::PagePtr page) override;
  void Close() override;
  /// True once the primary consumer and every satellite have cancelled.
  bool Abandoned() const override;

  /// Adds a satellite FIFO while the step WoP is open; false otherwise.
  bool TryAddSatellite(std::shared_ptr<FifoBuffer> satellite);

 private:
  std::shared_ptr<FifoBuffer> primary_;

  // Put forwards into satellite FIFOs (kChannel) while holding mu_, so the
  // tee sits strictly below the channels it fans out into.
  mutable Mutex mu_{lock_rank::Rank::kTeeSink};
  std::vector<std::shared_ptr<FifoBuffer>> satellites_ GUARDED_BY(mu_);
  bool emitted_ GUARDED_BY(mu_) = false;
  bool closed_ GUARDED_BY(mu_) = false;
};

/// Push-model exchange: primary FIFO plus tee-attached satellite FIFOs.
class FifoExchange : public Exchange {
 public:
  explicit FifoExchange(size_t channel_bytes)
      : channel_bytes_(channel_bytes),
        primary_(std::make_shared<FifoBuffer>(channel_bytes)),
        tee_(std::make_shared<TeeSink>(primary_)) {}

  core::PageSink* sink() override { return tee_.get(); }
  std::unique_ptr<core::PageSource> OpenPrimaryReader() override;
  std::unique_ptr<core::PageSource> TryAttachSatellite() override;

 private:
  const size_t channel_bytes_;
  std::shared_ptr<FifoBuffer> primary_;
  std::shared_ptr<TeeSink> tee_;
};

}  // namespace sdw::qpipe

#endif  // SDW_QPIPE_EXCHANGE_H_
