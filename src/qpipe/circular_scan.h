// Circular scan service: QPipe's table-scan stage with a linear WoP.
//
// One service per table keeps a single wrapping cursor through the buffer
// pool. Consumers attach at any time (their point of entry is the cursor's
// current position) and receive exactly one full cycle of raw table pages.
// I/O and buffer-pool traffic are thus shared across all concurrent scans of
// the table — the paper's "CS" configuration. The delivery transport honors
// the communication model: pull shares page pointers through one SPL; push
// deep-copies pages into per-consumer FIFOs in the service thread.
//
// Fault isolation: the cursor retries transient read errors internally; when
// a page stays unreadable the service bumps a fault epoch, skips the page,
// and keeps scanning. Consumers capture the epoch at attach time and their
// source reports the failure through PageSource::status() on the next read —
// only consumers attached when the fault fired are poisoned; later attaches
// get a clean stream (shared work, isolated failures).

#ifndef SDW_QPIPE_CIRCULAR_SCAN_H_
#define SDW_QPIPE_CIRCULAR_SCAN_H_

#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "core/page_channel.h"
#include "core/shared_pages_list.h"
#include "qpipe/fifo_buffer.h"
#include "storage/scan.h"

namespace sdw::qpipe {

/// Shared circular scan over one table.
class CircularScanService {
 public:
  CircularScanService(const storage::Table* table, storage::BufferPool* pool,
                      core::CommModel comm, size_t channel_bytes);
  ~CircularScanService();

  SDW_DISALLOW_COPY(CircularScanService);

  /// Attaches a consumer; the returned source yields each table page exactly
  /// once (one full cycle from the point of entry) and then ends.
  std::unique_ptr<core::PageSource> Attach();

  /// Pages delivered to consumers in total (diagnostics).
  uint64_t pages_produced() const { return pages_produced_; }
  /// Pages skipped after an unrecoverable read failure.
  uint64_t pages_skipped() const {
    return pages_skipped_.load(std::memory_order_relaxed);
  }

 private:
  // Pull mode: wraps an SPL reader, stopping after one full cycle.
  class CycleLimitedReader;
  // Epoch-scoped fault propagation around either transport's source.
  class FaultScopedSource;
  // Push mode: per-consumer state.
  struct PushConsumer {
    std::shared_ptr<FifoBuffer> fifo;
    uint64_t remaining;
  };

  void Loop();
  bool HasWorkLocked() const REQUIRES(mu_);
  // Records a terminal page failure: bumps the fault epoch so attached
  // consumers fail, while the scan skips the page and keeps serving.
  void RecordFault(uint64_t page_idx, const Status& why);
  // The fault that poisoned epochs newer than `attach_seq` (OK if none).
  Status FaultSince(uint64_t attach_seq);

  const storage::Table* table_;
  storage::BufferPool* pool_;
  const core::CommModel comm_;
  const size_t channel_bytes_;

  // Near the bottom of the hierarchy: the loop thread Puts into SPL /
  // consumer FIFOs (kChannel) — but always OUTSIDE mu_; the low rank exists
  // because CancelReader paths reach this lock from deep in drain stacks.
  Mutex mu_{lock_rank::Rank::kScanService};
  CondVar wake_cv_;
  bool stopping_ GUARDED_BY(mu_) = false;
  // Readers still taking their cycle (pull).
  size_t pull_consumers_ GUARDED_BY(mu_) = 0;
  std::vector<PushConsumer> push_pending_ GUARDED_BY(mu_);  // not yet merged
  std::vector<PushConsumer> push_active_ GUARDED_BY(mu_);   // loop-owned

  std::shared_ptr<core::SharedPagesList> spl_;  // pull transport (unbounded
                                                // readers; bounded bytes)
  storage::CircularPageCursor cursor_;
  std::atomic<uint64_t> pages_produced_{0};
  std::atomic<uint64_t> pages_skipped_{0};
  // Fault epoch: incremented per terminal page failure; last_fault_ (under
  // mu_) holds the most recent failure. Consumers compare their attach-time
  // snapshot against the current epoch on every read.
  std::atomic<uint64_t> fault_seq_{0};
  Status last_fault_ GUARDED_BY(mu_);

  std::thread worker_;
};

/// Registry of per-table services (one per scan stage).
class CircularScanMap {
 public:
  CircularScanMap(storage::BufferPool* pool, core::CommModel comm,
                  size_t channel_bytes)
      : pool_(pool), comm_(comm), channel_bytes_(channel_bytes) {}

  /// Service for `table`, created on first use.
  CircularScanService* Get(const storage::Table* table);

 private:
  storage::BufferPool* pool_;
  const core::CommModel comm_;
  const size_t channel_bytes_;

  Mutex mu_{lock_rank::Rank::kLeaf};  // Get() only mutates the vector
  std::vector<std::pair<const storage::Table*,
                        std::unique_ptr<CircularScanService>>>
      services_ GUARDED_BY(mu_);
};

}  // namespace sdw::qpipe

#endif  // SDW_QPIPE_CIRCULAR_SCAN_H_
