#include "qpipe/sp_registry.h"

#include <algorithm>

namespace sdw::qpipe {

void SpRegistry::Register(const std::string& signature,
                          std::shared_ptr<Exchange> ex,
                          std::shared_ptr<core::QueryLifecycle> consumer) {
  MutexLock lock(mu_);
  Host host;
  host.ex = std::move(ex);
  if (consumer != nullptr) host.consumers.push_back(std::move(consumer));
  hosts_[signature].push_back(std::move(host));
}

void SpRegistry::Unregister(const std::string& signature, const Exchange* ex) {
  MutexLock lock(mu_);
  auto it = hosts_.find(signature);
  if (it == hosts_.end()) return;
  std::erase_if(it->second, [ex](const Host& h) { return h.ex.get() == ex; });
  if (it->second.empty()) hosts_.erase(it);
}

std::unique_ptr<core::PageSource> SpRegistry::TryAttach(
    const std::string& signature,
    const std::shared_ptr<core::QueryLifecycle>& consumer) {
  MutexLock lock(mu_);
  auto it = hosts_.find(signature);
  if (it == hosts_.end()) return nullptr;
  for (Host& host : it->second) {
    if (auto src = host.ex->TryAttachSatellite()) {
      if (consumer != nullptr) host.consumers.push_back(consumer);
      return src;
    }
  }
  return nullptr;
}

void SpRegistry::UnregisterAborted(const std::string& signature,
                                   const Exchange* ex, const Status& why) {
  std::vector<std::shared_ptr<core::QueryLifecycle>> consumers;
  {
    MutexLock lock(mu_);
    auto it = hosts_.find(signature);
    if (it == hosts_.end()) return;
    for (Host& host : it->second) {
      if (host.ex.get() == ex) {
        consumers = std::move(host.consumers);
        break;
      }
    }
    std::erase_if(it->second,
                  [ex](const Host& h) { return h.ex.get() == ex; });
    if (it->second.empty()) hosts_.erase(it);
  }
  for (const auto& life : consumers) life->Finish(why);
}

void SpRegistry::FinishConsumers(const std::string& signature,
                                 const Exchange* ex, const Status& why) {
  std::vector<std::shared_ptr<core::QueryLifecycle>> consumers;
  {
    MutexLock lock(mu_);
    auto it = hosts_.find(signature);
    if (it == hosts_.end()) return;
    for (const Host& host : it->second) {
      if (host.ex.get() == ex) {
        consumers = host.consumers;
        break;
      }
    }
  }
  for (const auto& life : consumers) life->Finish(why);
}

int SpRegistry::MaxConsumerPriority(const std::string& signature,
                                    const Exchange* ex, int fallback) const {
  MutexLock lock(mu_);
  auto it = hosts_.find(signature);
  if (it == hosts_.end()) return fallback;
  for (const Host& host : it->second) {
    if (host.ex.get() != ex) continue;
    int best = fallback;
    for (const auto& life : host.consumers) {
      // Only live consumers bid: a cancelled/finished high-priority
      // satellite must not keep boosting the host it no longer reads.
      if (life->Detached()) continue;
      best = std::max(best, life->options().priority);
    }
    return best;
  }
  return fallback;
}

bool SpRegistry::AllConsumersDetached(const std::string& signature,
                                      const Exchange* ex) const {
  MutexLock lock(mu_);
  auto it = hosts_.find(signature);
  if (it == hosts_.end()) return false;
  for (const Host& host : it->second) {
    if (host.ex.get() != ex) continue;
    if (host.consumers.empty()) return false;  // no lifecycle tracking
    return std::all_of(
        host.consumers.begin(), host.consumers.end(),
        [](const auto& life) { return life->Detached(); });
  }
  return false;
}

size_t SpRegistry::size() const {
  MutexLock lock(mu_);
  size_t n = 0;
  for (const auto& [sig, v] : hosts_) n += v.size();
  return n;
}

}  // namespace sdw::qpipe
