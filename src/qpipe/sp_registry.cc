#include "qpipe/sp_registry.h"

#include <algorithm>

namespace sdw::qpipe {

void SpRegistry::Register(const std::string& signature,
                          std::shared_ptr<Exchange> ex) {
  std::unique_lock<std::mutex> lock(mu_);
  hosts_[signature].push_back(std::move(ex));
}

void SpRegistry::Unregister(const std::string& signature, const Exchange* ex) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = hosts_.find(signature);
  if (it == hosts_.end()) return;
  std::erase_if(it->second,
                [ex](const std::shared_ptr<Exchange>& e) { return e.get() == ex; });
  if (it->second.empty()) hosts_.erase(it);
}

std::unique_ptr<core::PageSource> SpRegistry::TryAttach(
    const std::string& signature) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = hosts_.find(signature);
  if (it == hosts_.end()) return nullptr;
  for (auto& ex : it->second) {
    if (auto src = ex->TryAttachSatellite()) return src;
  }
  return nullptr;
}

size_t SpRegistry::size() const {
  std::unique_lock<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [sig, v] : hosts_) n += v.size();
  return n;
}

}  // namespace sdw::qpipe
